"""Content-addressed artifact store for sweep-cell results.

Every sweep cell in the tree is a pure function of ``(run_key,
master_seed, seed_name)`` — ``run_key`` identifying the run function's
configuration (for scenario cells: the canonical digest of the spec and
the swept field), the other two fixing the cell's derived seed. That
purity is what makes per-cell results cacheable *content-addressed*:
the cache key is a SHA-256 over exactly those identity fields plus the
artifact schema version, so

* re-running a finished sweep with the same cache executes **zero**
  cells and reproduces byte-identical payloads,
* an interrupted sweep resumes — results are persisted per cell as they
  complete (atomically, in the worker), so only unfinished cells
  execute on the re-run,
* any change to the spec, the seed discipline or the artifact schema
  changes the key and the stale entry is silently ignored, recomputed
  and re-stored — never served.

Writes are atomic (temp file + ``os.replace`` in the target directory),
so a crash mid-write can never leave a half-written entry that a later
run would trust, and concurrent pool workers can write the same store
without locks (last replace wins; both wrote identical bytes anyway).

Results must be JSON-serializable and JSON-stable (``dict[str, float]``
metrics dicts are — floats round-trip exactly). That is every scenario
cell in the tree; generic experiment cells returning richer objects
should not be cached here.

Layout: ``<root>/<key[:2]>/<key>.json``, one record per cell::

    {"schema": "repro-artifact-v1", "run_key": ..., "seed_name": ...,
     "master_seed": ..., "result": {...}}
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigError
from repro.experiments.executor import (
    Executor,
    OnResultFn,
    SweepCell,
)

#: Version stamp baked into every cell key AND every record. Bump it when
#: the result format or the seeding contract changes — every pre-bump
#: entry then misses (different key) and, belt-and-braces, fails the
#: record check even if a file were copied into place by hand.
ARTIFACT_SCHEMA = "repro-artifact-v1"


def canonical_json(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace — digest-stable."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def write_json_atomic(path: pathlib.Path, payload: Any, *, indent=None) -> None:
    """Write ``payload`` as JSON to ``path`` via temp file + ``os.replace``.

    The temp file lives in the target directory so the replace is
    same-filesystem and atomic; a crash mid-write leaves only a stray
    ``.tmp`` file, never a truncated target.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, default=str)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise


class ArtifactStore:
    """Per-cell results under one root directory, content-addressed."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)

    def cell_key(
        self, *, run_key: str, seed_name: str, master_seed: int
    ) -> str:
        """The content address of one cell's result."""
        return hashlib.sha256(
            canonical_json(
                {
                    "schema": ARTIFACT_SCHEMA,
                    "run_key": run_key,
                    "seed_name": seed_name,
                    "master_seed": master_seed,
                }
            ).encode("utf-8")
        ).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(
        self, *, run_key: str, seed_name: str, master_seed: int
    ) -> Mapping | None:
        """The stored record for a cell, or None on miss.

        A record only counts as a hit when its identity fields match the
        request exactly — a corrupt file, a schema bump or a stale entry
        whose content disagrees with its address is a miss (recomputed,
        never served).
        """
        path = self._path(
            self.cell_key(
                # repro-lint: allow[DET004]: seed_name is forwarded verbatim from the cell; each sweep driver declares and lints the label
                run_key=run_key, seed_name=seed_name, master_seed=master_seed
            )
        )
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        if not isinstance(record, dict) or "result" not in record:
            return None
        if (
            record.get("schema") != ARTIFACT_SCHEMA
            or record.get("run_key") != run_key
            or record.get("seed_name") != seed_name
            or record.get("master_seed") != master_seed
        ):
            return None
        return record

    def put(
        self,
        result: Any,
        *,
        run_key: str,
        seed_name: str,
        master_seed: int,
    ) -> None:
        """Store one cell's result atomically (safe from pool workers)."""
        key = self.cell_key(
            # repro-lint: allow[DET004]: seed_name is forwarded verbatim from the cell; each sweep driver declares and lints the label
            run_key=run_key, seed_name=seed_name, master_seed=master_seed
        )
        write_json_atomic(
            self._path(key),
            {
                "schema": ARTIFACT_SCHEMA,
                "run_key": run_key,
                "seed_name": seed_name,
                "master_seed": master_seed,
                "result": result,
            },
        )

    def __len__(self) -> int:
        """Number of stored entries (walks the store)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"


def _caching_run(
    arg_with_name: tuple[Any, str],
    seed: int,
    *,
    inner: Callable[[Any, int], Any],
    root: str,
    run_key: str,
    master_seed: int,
) -> Any:
    """Worker-side wrapper: evaluate, then persist the result per cell.

    The store write happens *inside the worker*, immediately after the
    cell completes — that is what makes an interrupted sweep resumable:
    everything finished before the interruption is already on disk.
    """
    arg, seed_name = arg_with_name
    result = inner(arg, seed)
    ArtifactStore(root).put(
        # repro-lint: allow[DET004]: seed_name is forwarded verbatim from the cell; each sweep driver declares and lints the label
        result, run_key=run_key, seed_name=seed_name, master_seed=master_seed
    )
    return result


class CachingExecutor:
    """Wrap any executor with per-cell artifact caching.

    ``map_cells`` first resolves every cell against the store; only the
    misses are handed to the inner executor (with results persisted
    cell-by-cell as they complete), and the returned list is in cell
    order regardless of the hit/miss split — so a cached sweep is
    bit-identical to an uncached one. ``hits``/``executed`` report the
    split of the most recent call.

    Cached cells are announced to ``on_result`` first (canonical
    order), then executed cells in completion order; per-group progress
    adapters (:func:`~repro.experiments.runner.grouped_progress`) work
    unchanged.
    """

    def __init__(self, inner: Executor, store: ArtifactStore, run_key: str):
        if not isinstance(run_key, str) or not run_key:
            raise ConfigError(
                f"run_key must be a non-empty string, got {run_key!r}"
            )
        self.inner = inner
        self.store = store
        self.run_key = run_key
        #: hit/executed counts of the most recent map_cells call.
        self.hits = 0
        self.executed = 0

    def map_cells(
        self,
        run: Callable[[Any, int], Any],
        cells: Sequence[SweepCell],
        *,
        master_seed: int = 0,
        on_result: OnResultFn | None = None,
    ) -> list[Any]:
        cells = list(cells)
        total = len(cells)
        results: list[Any] = [None] * total
        missing: list[tuple[int, SweepCell]] = []
        for index, cell in enumerate(cells):
            record = self.store.get(
                run_key=self.run_key,
                # repro-lint: allow[DET004]: seed_name is forwarded verbatim from the cell; each sweep driver declares and lints the label
                seed_name=cell.seed_name,
                master_seed=master_seed,
            )
            if record is None:
                missing.append((index, cell))
            else:
                results[index] = record["result"]
        self.hits = total - len(missing)
        self.executed = len(missing)
        done = 0
        if on_result is not None:
            hit_indices = {index for index, _ in missing}
            for index in range(total):
                if index not in hit_indices:
                    done += 1
                    on_result(index, done, total)
        if not missing:
            return results
        wrapped = functools.partial(
            _caching_run,
            inner=run,
            root=str(self.store.root),
            run_key=self.run_key,
            master_seed=master_seed,
        )
        sub_cells = [
            SweepCell(
                arg=(cell.arg, cell.seed_name),
                # repro-lint: allow[DET004]: seed_name is forwarded verbatim from the cell; each sweep driver declares and lints the label
                seed_name=cell.seed_name,
                describe=cell.describe,
            )
            for _, cell in missing
        ]
        hits = self.hits

        def sub_on_result(sub_index: int, sub_done: int, _sub_total: int):
            if on_result is not None:
                on_result(missing[sub_index][0], hits + sub_done, total)

        sub_results = self.inner.map_cells(
            wrapped,
            sub_cells,
            master_seed=master_seed,
            on_result=sub_on_result if on_result is not None else None,
        )
        for (index, _), result in zip(missing, sub_results):
            results[index] = result
        return results

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return (
            f"CachingExecutor({self.inner!r}, store={self.store!r}, "
            f"run_key={self.run_key[:12]!r}...)"
        )
