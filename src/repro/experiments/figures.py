"""Figures 8–11 (§VII): the paper's four simulation plots.

Each ``run_figureN`` sweeps the fraction of alive processes over a grid
(the figures' x-axis), runs the §VII scenario several times per point with
derived seeds, and returns a :class:`~repro.metrics.report.Table` whose
columns are the paper's plotted series:

* Fig. 8 — events sent inside each group (T2, T1, T0),
* Fig. 9 — events sent between groups (T2→T1, T1→T0),
* Fig. 10 — fraction of processes receiving the event, stillborn failures,
* Fig. 11 — the same under dynamic (weakly-consistent) failures.
"""

from __future__ import annotations

import functools
from typing import Mapping, Sequence

from repro.experiments.executor import Executor, ExecutorSpec, coerce_executor
from repro.experiments.runner import ProgressFn, SweepResult, run_sweep
from repro.metrics.report import Table
from repro.workloads.scenarios import PaperScenario

#: The figures' x-axis: percentage of alive processes, 0 → 1.
DEFAULT_GRID: tuple[float, ...] = (
    0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


def _run_scenario_once(
    alive_fraction: float,
    seed: int,
    *,
    scenario: PaperScenario,
    failure_mode: str,
) -> Mapping[str, float]:
    """One §VII run; returns every metric any of the figures needs."""
    built = scenario.build(
        seed=seed, alive_fraction=alive_fraction, failure_mode=failure_mode
    )
    built.publish_and_run()
    metrics: dict[str, float] = {}
    topics = built.topics  # [T0, T1, ..., Tt] root-first
    intra = built.intra_group_messages()
    for level, topic in enumerate(topics):
        metrics[f"intra_T{level}"] = float(intra[topic])
    for (lower, upper), count in built.inter_group_messages().items():
        lower_level = topics.index(lower)
        upper_level = topics.index(upper)
        metrics[f"inter_T{lower_level}_T{upper_level}"] = float(count)
    fractions = built.delivered_fractions()
    for level, topic in enumerate(topics):
        metrics[f"received_T{level}"] = fractions[topic]
    flags = built.all_received_flags()
    for level, topic in enumerate(topics):
        metrics[f"all_received_T{level}"] = 1.0 if flags[topic] else 0.0
    return metrics


def _sweep(
    *,
    grid: Sequence[float],
    runs: int,
    master_seed: int,
    scenario: PaperScenario,
    failure_mode: str,
    label: str,
    executor: Executor,
    progress: ProgressFn | None = None,
) -> SweepResult:
    # A partial of the module-level run function (not a lambda) so the
    # sweep can be fanned out over parallel executors.
    return run_sweep(
        functools.partial(
            _run_scenario_once, scenario=scenario, failure_mode=failure_mode
        ),
        grid,
        runs=runs,
        master_seed=master_seed,
        label=label,
        executor=executor,
        progress=progress,
    )


def _table_from_sweep(
    sweep: SweepResult, title: str, columns: Mapping[str, str]
) -> Table:
    """Build a report table from selected sweep metrics.

    ``columns`` maps metric key → column header, in display order.
    """
    table = Table(title, ["alive_fraction", *columns.values()], precision=3)
    for index, point in enumerate(sweep.points):
        row = [point]
        for metric in columns:
            row.append(sweep.means[metric][index])
        table.add_row(*row)
    return table


def run_figure8(
    *,
    grid: Sequence[float] = DEFAULT_GRID,
    runs: int = 5,
    master_seed: int = 0,
    scenario: PaperScenario | None = None,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Fig. 8: number of events sent in each group vs alive fraction."""
    scenario = scenario or PaperScenario()
    sweep = _sweep(
        grid=grid,
        runs=runs,
        master_seed=master_seed,
        scenario=scenario,
        failure_mode="stillborn",
        label="fig8",
        executor=coerce_executor(executor, jobs=jobs),
        progress=progress,
    )
    depth = scenario.depth
    columns = {
        f"intra_T{level}": f"msgs_T{level}" for level in range(depth, -1, -1)
    }
    return _table_from_sweep(
        sweep, "Fig. 8 — events sent within each group", columns
    )


def run_figure9(
    *,
    grid: Sequence[float] = DEFAULT_GRID,
    runs: int = 5,
    master_seed: int = 0,
    scenario: PaperScenario | None = None,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Fig. 9: number of inter-group events vs alive fraction."""
    scenario = scenario or PaperScenario()
    sweep = _sweep(
        grid=grid,
        runs=runs,
        master_seed=master_seed,
        scenario=scenario,
        failure_mode="stillborn",
        label="fig9",
        executor=coerce_executor(executor, jobs=jobs),
        progress=progress,
    )
    depth = scenario.depth
    columns = {
        f"inter_T{level}_T{level - 1}": f"T{level}->T{level - 1}"
        for level in range(depth, 0, -1)
    }
    return _table_from_sweep(
        sweep, "Fig. 9 — events sent between groups", columns
    )


def run_figure10(
    *,
    grid: Sequence[float] = DEFAULT_GRID,
    runs: int = 5,
    master_seed: int = 0,
    scenario: PaperScenario | None = None,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Fig. 10: reception fraction per group, stillborn failures."""
    scenario = scenario or PaperScenario()
    sweep = _sweep(
        grid=grid,
        runs=runs,
        master_seed=master_seed,
        scenario=scenario,
        failure_mode="stillborn",
        label="fig10",
        executor=coerce_executor(executor, jobs=jobs),
        progress=progress,
    )
    depth = scenario.depth
    columns = {
        f"received_T{level}": f"recv_T{level}"
        for level in range(depth, -1, -1)
    }
    return _table_from_sweep(
        sweep, "Fig. 10 — reliability (stillborn processes)", columns
    )


def run_figure11(
    *,
    grid: Sequence[float] = DEFAULT_GRID,
    runs: int = 5,
    master_seed: int = 0,
    scenario: PaperScenario | None = None,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    jobs: int | None = None,
) -> Table:
    """Fig. 11: reception fraction per group, dynamic failures."""
    scenario = scenario or PaperScenario()
    sweep = _sweep(
        grid=grid,
        runs=runs,
        master_seed=master_seed,
        scenario=scenario,
        failure_mode="dynamic",
        label="fig11",
        executor=coerce_executor(executor, jobs=jobs),
        progress=progress,
    )
    depth = scenario.depth
    columns = {
        f"received_T{level}": f"recv_T{level}"
        for level in range(depth, -1, -1)
    }
    return _table_from_sweep(
        sweep, "Fig. 11 — reliability (dynamically failed processes)", columns
    )
