"""Declarative scenario specifications: a dict/JSON spec → runnable simulation.

Every experiment so far is hard-coded to the §VII :class:`PaperScenario`
shape. A :class:`ScenarioSpec` opens the scenario space declaratively by
composing the ingredients that already exist as modules:

* a **topic hierarchy** — chain, balanced tree, or explicit dotted names
  (:mod:`repro.topics.builders`),
* a **subscription population** — per-level counts, explicit per-topic
  counts, uniform, or Zipf popularity (:mod:`repro.workloads.subscriptions`),
* a **publication schedule** — single-shot, burst, Poisson, or a mixed
  multi-topic merge of those (:mod:`repro.workloads.publications`),
* a **failure plan** — none, stillborn, dynamic (weakly-consistent),
  crash/recover churn, or network partitions (:mod:`repro.failures`,
  :mod:`repro.net.partitions`),
* **protocol parameters** — :class:`~repro.core.params.TopicParams`
  defaults plus per-topic overrides,
* a **protocol** — daMulticast or any baseline (broadcast, multicast,
  hierarchical, naive publisher),
* an execution **mode** — ``"static"`` (the §VII simulator: tables drawn
  once, runs to quiescence) or ``"dynamic"`` (the full protocol: staggered
  joins bootstrap through the overlay, FIND_SUPER_CONTACT floods, tables
  self-repair, and the run is driven to a spec-derived horizon),
* a **latency model** (``latency`` section, either mode:
  constant/uniform/exponential, with optional per-link-class
  ``intra``/``inter`` overrides for daMulticast),
* a **link-fault plan** (``faults`` section, either mode: Bernoulli or
  Gilbert–Elliott burst loss, duplication, delay spikes — composed
  loss → duplicate → delay_spike per link, with optional per-link-class
  ``intra``/``inter`` overrides for daMulticast; see
  :mod:`repro.net.faults`),
* and, in dynamic mode, a **bootstrap arrival schedule** (``dynamic``
  section: immediate, staggered, or waves) plus an orchestrated **failure
  campaign** (``campaign`` section compiling to
  :class:`~repro.failures.injector.FailureCampaign` actions).

A spec is a plain mapping (JSON-serializable), validated with precise
:class:`~repro.errors.ConfigError` messages — unknown keys, out-of-domain
values and impossible references all fail eagerly at compile time, never
mid-simulation. :func:`compile_spec` turns it into a :class:`CompiledSpec`;
``CompiledSpec.run(seed)`` (or the :func:`run_spec` shorthand) builds the
static system the same way :class:`PaperScenario` does — populate groups,
pin failure-protected publishers, install the failure/partition model,
finalize static membership — replays the schedule, and returns the
standard metrics dict.

Determinism
-----------
``run_spec(spec, seed)`` is a pure function of ``(spec, seed)``: every
random decision draws from a stream derived via
:func:`~repro.sim.rng.derive_seed` (``spec/subscriptions``,
``spec/publications/<i>``, ``spec/scenario``, ``spec/faults`` for the
link-fault coins, and in dynamic mode ``spec/churn`` for churn
realization and ``spec/campaign`` for campaign samples), so the same
spec and seed give bit-identical metrics in any process. The fault
coins draw from their own stream, so a spec with ``faults`` omitted
(or every stage ``none``) makes **zero** fault draws and is
bit-identical to the same spec before the fault layer existed. That is what makes specs
sweepable over any field through the parallel sweep engine:
:func:`sweep_scenario` derives per-cell seeds with the standard
``derive_seed(master_seed, f"{label}/{point}/{j}")`` contract and is
therefore bit-identical for every ``jobs`` count.

Defaults differing from :class:`~repro.core.params.TopicParams`: specs use
``fanout_log_base = 10`` (the paper's own simulator scale) unless
overridden.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import json
import math
import pathlib
import random
import statistics
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.baselines.broadcast import GossipBroadcastSystem
from repro.baselines.hierarchical import HierarchicalGossipSystem
from repro.baselines.multicast import GossipMulticastSystem
from repro.baselines.naive_publisher import NaivePublisherSystem
from repro.core.params import DaMulticastConfig, TopicParams
from repro.core.system import DaMulticastSystem
from repro.errors import ConfigError, ReproError
from repro.experiments.executor import ExecutorSpec, coerce_executor
from repro.experiments.runner import (
    ProgressFn,
    SweepCell,
    SweepResult,
    aggregate_runs,
    grouped_progress,
    run_cells,
    run_sweep,
)
from repro.failures.churn import ChurnSchedule
from repro.failures.dynamic import DynamicFailures
from repro.failures.injector import FailureCampaign
from repro.failures.stillborn import sample_stillborn
from repro.metrics.degradation import (
    WindowPoint,
    degradation_summary,
    delivery_ratio_series,
)
from repro.metrics.delivery import parasite_deliveries
from repro.net.faults import (
    NO_FAULTS,
    BernoulliLoss,
    DelaySpike,
    DuplicateModel,
    FaultPipeline,
    GilbertElliott,
    LinkClassFaults,
    LinkFaultModel,
)
from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    LinkClassLatency,
    UniformLatency,
    ZERO_LATENCY,
)
from repro.net.partitions import StaticPartition
from repro.net.stats import DROP_REASONS, FAULT_REASONS
from repro.sim.rng import derive_seed
from repro.topics.builders import balanced_tree, chain, from_names
from repro.validation import check_finite, check_number
from repro.topics.hierarchy import TopicHierarchy
from repro.topics.topic import Topic
from repro.workloads.publications import (
    PoissonSchedule,
    ScheduledPublication,
    burst_schedule,
    replay_on,
    single_shot,
)
from repro.workloads.subscriptions import (
    populate_system,
    uniform_subscriptions,
    zipf_subscriptions,
)

PROTOCOLS = ("daMulticast", "broadcast", "multicast", "hierarchical", "naive")

_TOP_KEYS = {
    "name",
    "description",
    "protocol",
    "mode",
    "topics",
    "subscriptions",
    "publications",
    "failures",
    "campaign",
    "latency",
    "faults",
    "dynamic",
    "params",
    "p_success",
}

#: Spec-level parameter defaults: the §VII constants with the paper's own
#: simulator log base (see DESIGN.md faithfulness note 2).
_PARAM_DEFAULTS: dict[str, Any] = {
    "b": 3.0,
    "c": 5.0,
    "g": 5.0,
    "a": 1.0,
    "z": 3,
    "tau": 1,
    "fanout_log_base": 10.0,
}

#: Dynamic-mode run settings (the ``dynamic`` section's defaults):
#: publications replay at ``warmup + t``, the run ends ``settle`` after the
#: last scheduled activity, and the remaining knobs feed
#: :class:`~repro.core.params.DaMulticastConfig` / the bootstrap overlay.
_DYNAMIC_DEFAULTS: dict[str, Any] = {
    "warmup": 30.0,
    "settle": 10.0,
    "maintain_interval": 1.0,
    "ping_timeout": 1.0,
    "bootstrap_timeout": 2.0,
    "bootstrap_ttl": 4,
    "overlay_degree": 5,
}

_CAMPAIGN_KINDS = (
    "kill_fraction",
    "kill_super_links",
    "recover",
    "recover_all",
)

_LINK_CLASSES = ("inter", "intra")

_MISSING = object()


# ----------------------------------------------------------------------
# Validation primitives
# ----------------------------------------------------------------------
def _require_mapping(value: Any, where: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise ConfigError(
            f"{where} must be a mapping, got {type(value).__name__}"
        )
    return value


def _reject_unknown_keys(
    section: Mapping, allowed: set[str], where: str
) -> None:
    unknown = sorted(set(section) - allowed)
    if unknown:
        raise ConfigError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _take_kind(section: Mapping, kinds: Sequence[str], where: str) -> str:
    kind = section.get("kind")
    if kind not in kinds:
        raise ConfigError(
            f"{where}: 'kind' must be one of {', '.join(kinds)}, "
            f"got {kind!r}"
        )
    return kind


def _get_number(
    section: Mapping,
    key: str,
    where: str,
    *,
    default: Any = _MISSING,
    minimum: float | None = None,
    maximum: float | None = None,
    above: float | None = None,
    integer: bool = False,
) -> Any:
    value = section.get(key, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ConfigError(f"{where}: missing required key {key!r}")
        return default
    check_number(value, f"{where}: {key}")
    if integer and not isinstance(value, int):
        raise ConfigError(f"{where}: {key} must be an integer, got {value!r}")
    check_finite(value, f"{where}: {key}")
    if minimum is not None and value < minimum:
        raise ConfigError(f"{where}: {key} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ConfigError(f"{where}: {key} must be <= {maximum}, got {value}")
    if above is not None and value <= above:
        raise ConfigError(f"{where}: {key} must be > {above}, got {value}")
    return value


def _get_bool(
    section: Mapping, key: str, where: str, *, default: bool
) -> bool:
    value = section.get(key, _MISSING)
    if value is _MISSING:
        return default
    if not isinstance(value, bool):
        raise ConfigError(f"{where}: {key} must be a boolean, got {value!r}")
    return value


def _parse_topic(name: Any, where: str) -> Topic:
    if not isinstance(name, str):
        raise ConfigError(
            f"{where}: topic name must be a string, got {name!r}"
        )
    try:
        return Topic.parse(name)
    except ReproError as exc:
        raise ConfigError(f"{where}: invalid topic name {name!r}: {exc}") from exc


# ----------------------------------------------------------------------
# Section validators (each returns nothing; compile stores the sections)
# ----------------------------------------------------------------------
def _validate_topics(
    section: Mapping,
) -> tuple[TopicHierarchy, tuple[Topic, ...], bool]:
    """Validate the topic section; return (hierarchy, ordered topics, chain?).

    Chain topics are ordered root-first (the §VII layout); any other shape
    uses the hierarchy's canonical sorted order.
    """
    _require_mapping(section, "topics")
    kind = _take_kind(section, ("chain", "tree", "names"), "topics")
    if kind == "chain":
        _reject_unknown_keys(section, {"kind", "depth", "prefix"}, "topics")
        depth = _get_number(section, "depth", "topics", minimum=0, integer=True)
        prefix = section.get("prefix", "t")
        if not isinstance(prefix, str) or not prefix:
            raise ConfigError(
                f"topics: prefix must be a non-empty string, got {prefix!r}"
            )
        topics = chain(depth, prefix=prefix)
        return TopicHierarchy.from_topics(topics), tuple(topics), True
    if kind == "tree":
        _reject_unknown_keys(section, {"kind", "arity", "depth"}, "topics")
        arity = _get_number(section, "arity", "topics", minimum=1, integer=True)
        depth = _get_number(section, "depth", "topics", minimum=1, integer=True)
        hierarchy = balanced_tree(arity, depth)
        return hierarchy, tuple(hierarchy.topics), False
    # names
    _reject_unknown_keys(section, {"kind", "names"}, "topics")
    names = section.get("names")
    if not isinstance(names, Sequence) or isinstance(names, str) or not names:
        raise ConfigError(
            "topics: 'names' must be a non-empty list of dotted topic names"
        )
    parsed = [_parse_topic(name, "topics.names") for name in names]
    hierarchy = from_names(n.name for n in parsed)
    return hierarchy, tuple(hierarchy.topics), False


def _validate_subscriptions(
    section: Mapping,
    hierarchy: TopicHierarchy,
    ordered_topics: tuple[Topic, ...],
    is_chain: bool,
) -> None:
    _require_mapping(section, "subscriptions")
    kind = _take_kind(
        section, ("per_level", "explicit", "uniform", "zipf"), "subscriptions"
    )
    if kind == "per_level":
        _reject_unknown_keys(section, {"kind", "counts"}, "subscriptions")
        if not is_chain:
            raise ConfigError(
                "subscriptions: kind 'per_level' requires a chain topic "
                "hierarchy; use 'explicit' counts for trees/names"
            )
        counts = section.get("counts")
        if not isinstance(counts, Sequence) or isinstance(counts, str):
            raise ConfigError(
                "subscriptions: 'counts' must be a list of integers"
            )
        if len(counts) != len(ordered_topics):
            raise ConfigError(
                f"subscriptions: {len(counts)} counts for "
                f"{len(ordered_topics)} chain levels; they must match"
            )
        for count in counts:
            if isinstance(count, bool) or not isinstance(count, int):
                raise ConfigError(
                    f"subscriptions: counts must be integers, got {count!r}"
                )
            if count < 0:
                raise ConfigError(
                    f"subscriptions: counts must be >= 0, got {count}"
                )
        if sum(counts) < 1:
            raise ConfigError("subscriptions: population must not be empty")
    elif kind == "explicit":
        _reject_unknown_keys(section, {"kind", "counts"}, "subscriptions")
        counts = section.get("counts")
        _require_mapping(counts, "subscriptions.counts")
        total = 0
        # repro-lint: allow[DET003]: the integer total is order-independent and counts preserves the spec's declared topic order
        for name, count in counts.items():
            topic = _parse_topic(name, "subscriptions.counts")
            if topic not in hierarchy:
                raise ConfigError(
                    f"subscriptions.counts: topic {topic.name!r} is not in "
                    "the declared hierarchy"
                )
            if isinstance(count, bool) or not isinstance(count, int):
                raise ConfigError(
                    f"subscriptions.counts[{name!r}] must be an integer, "
                    f"got {count!r}"
                )
            if count < 0:
                raise ConfigError(
                    f"subscriptions.counts[{name!r}] must be >= 0, got {count}"
                )
            total += count
        if total < 1:
            raise ConfigError("subscriptions: population must not be empty")
    elif kind == "uniform":
        _reject_unknown_keys(
            section, {"kind", "n", "include_root"}, "subscriptions"
        )
        _get_number(section, "n", "subscriptions", minimum=1, integer=True)
        _get_bool(section, "include_root", "subscriptions", default=True)
    else:  # zipf
        _reject_unknown_keys(
            section, {"kind", "n", "exponent", "include_root"}, "subscriptions"
        )
        _get_number(section, "n", "subscriptions", minimum=1, integer=True)
        _get_number(section, "exponent", "subscriptions", default=1.0, minimum=0)
        _get_bool(section, "include_root", "subscriptions", default=False)


def _validate_topic_ref(
    section: Mapping,
    ordered_topics: tuple[Topic, ...],
    hierarchy: TopicHierarchy,
    is_chain: bool,
    where: str,
) -> None:
    """One publication target: a 'topic' name or (chains only) a 'level'."""
    if "topic" in section and "level" in section:
        raise ConfigError(f"{where}: give 'topic' or 'level', not both")
    if "topic" in section:
        topic = _parse_topic(section["topic"], where)
        if topic not in hierarchy:
            raise ConfigError(
                f"{where}: topic {topic.name!r} is not in the declared "
                "hierarchy"
            )
    elif "level" in section:
        if not is_chain:
            raise ConfigError(
                f"{where}: 'level' requires a chain topic hierarchy; "
                "use 'topic' names for trees/names"
            )
        level = section["level"]
        if isinstance(level, bool) or not isinstance(level, int):
            raise ConfigError(
                f"{where}: level must be an integer, got {level!r}"
            )
        if not -len(ordered_topics) <= level < len(ordered_topics):
            raise ConfigError(
                f"{where}: level {level} out of range for a chain of "
                f"{len(ordered_topics)} levels"
            )


def _validate_publications(
    section: Mapping,
    ordered_topics: tuple[Topic, ...],
    hierarchy: TopicHierarchy,
    is_chain: bool,
    where: str = "publications",
    allow_mixed: bool = True,
) -> None:
    _require_mapping(section, where)
    kinds = ("single", "burst", "poisson") + (("mixed",) if allow_mixed else ())
    kind = _take_kind(section, kinds, where)
    if kind == "single":
        _reject_unknown_keys(section, {"kind", "topic", "level", "at"}, where)
        _validate_topic_ref(section, ordered_topics, hierarchy, is_chain, where)
        _get_number(section, "at", where, default=0.0, minimum=0)
    elif kind == "burst":
        _reject_unknown_keys(
            section, {"kind", "topic", "level", "count", "start", "spacing"}, where
        )
        _validate_topic_ref(section, ordered_topics, hierarchy, is_chain, where)
        _get_number(section, "count", where, minimum=1, integer=True)
        _get_number(section, "start", where, default=0.0, minimum=0)
        _get_number(section, "spacing", where, default=0.0, minimum=0)
    elif kind == "poisson":
        _reject_unknown_keys(
            section,
            {"kind", "topics", "levels", "weights", "rate", "horizon"},
            where,
        )
        _get_number(section, "rate", where, above=0)
        _get_number(section, "horizon", where, above=0)
        if "topics" in section and "levels" in section:
            raise ConfigError(f"{where}: give 'topics' or 'levels', not both")
        n_targets = None
        if "topics" in section:
            names = section["topics"]
            if not isinstance(names, Sequence) or isinstance(names, str) or not names:
                raise ConfigError(
                    f"{where}: 'topics' must be a non-empty list of names"
                )
            for name in names:
                _validate_topic_ref(
                    {"topic": name}, ordered_topics, hierarchy, is_chain, where
                )
            n_targets = len(names)
        elif "levels" in section:
            levels = section["levels"]
            if not isinstance(levels, Sequence) or not levels:
                raise ConfigError(
                    f"{where}: 'levels' must be a non-empty list of integers"
                )
            for level in levels:
                _validate_topic_ref(
                    {"level": level}, ordered_topics, hierarchy, is_chain, where
                )
            n_targets = len(levels)
        if "weights" in section:
            weights = section["weights"]
            if n_targets is None:
                raise ConfigError(
                    f"{where}: 'weights' requires explicit 'topics' or 'levels'"
                )
            if not isinstance(weights, Sequence) or len(weights) != n_targets:
                raise ConfigError(
                    f"{where}: 'weights' must list one weight per target"
                )
            for weight in weights:
                if (
                    isinstance(weight, bool)
                    or not isinstance(weight, (int, float))
                    or not math.isfinite(weight)
                    or weight < 0
                ):
                    raise ConfigError(
                        f"{where}: weights must be finite numbers >= 0, "
                        f"got {weight!r}"
                    )
            if sum(weights) <= 0:
                raise ConfigError(f"{where}: weights must not all be zero")
    else:  # mixed
        _reject_unknown_keys(section, {"kind", "parts"}, where)
        parts = section.get("parts")
        if not isinstance(parts, Sequence) or isinstance(parts, str) or not parts:
            raise ConfigError(
                f"{where}: 'parts' must be a non-empty list of schedules"
            )
        for index, part in enumerate(parts):
            _validate_publications(
                part,
                ordered_topics,
                hierarchy,
                is_chain,
                where=f"{where}.parts[{index}]",
                allow_mixed=False,
            )


def _validate_failures(section: Mapping) -> None:
    _require_mapping(section, "failures")
    kind = _take_kind(
        section,
        ("none", "stillborn", "dynamic", "churn", "partition"),
        "failures",
    )
    if kind == "none":
        _reject_unknown_keys(section, {"kind"}, "failures")
    elif kind == "stillborn":
        _reject_unknown_keys(section, {"kind", "alive_fraction"}, "failures")
        _get_number(
            section, "alive_fraction", "failures", minimum=0.0, maximum=1.0
        )
    elif kind == "dynamic":
        _reject_unknown_keys(
            section, {"kind", "alive_fraction", "mode"}, "failures"
        )
        _get_number(
            section, "alive_fraction", "failures", minimum=0.0, maximum=1.0
        )
        mode = section.get("mode", "per_attempt")
        if mode not in ("per_attempt", "per_pair"):
            raise ConfigError(
                "failures: dynamic mode must be 'per_attempt' or "
                f"'per_pair', got {mode!r}"
            )
    elif kind == "churn":
        _reject_unknown_keys(
            section,
            {"kind", "crash_probability", "recover_probability", "horizon"},
            "failures",
        )
        _get_number(
            section, "crash_probability", "failures", minimum=0.0, maximum=1.0
        )
        _get_number(
            section,
            "recover_probability",
            "failures",
            default=0.5,
            minimum=0.0,
            maximum=1.0,
        )
        _get_number(section, "horizon", "failures", above=0)
    else:  # partition
        _reject_unknown_keys(
            section, {"kind", "islands", "heals_at"}, "failures"
        )
        islands = section.get("islands", _MISSING)
        if islands is _MISSING:
            raise ConfigError("failures: missing required key 'islands'")
        if islands != "by_topic" and (
            isinstance(islands, bool)
            or not isinstance(islands, int)
            or islands < 2
        ):
            raise ConfigError(
                "failures: 'islands' must be an integer >= 2 (random "
                f"assignment) or 'by_topic', got {islands!r}"
            )
        if section.get("heals_at") is not None:
            _get_number(section, "heals_at", "failures", minimum=0)


def _validate_dynamic(section: Mapping) -> None:
    _require_mapping(section, "dynamic")
    _reject_unknown_keys(
        section, {"bootstrap"} | set(_DYNAMIC_DEFAULTS), "dynamic"
    )
    _get_number(
        section, "warmup", "dynamic",
        default=_DYNAMIC_DEFAULTS["warmup"], minimum=0,
    )
    _get_number(
        section, "settle", "dynamic",
        default=_DYNAMIC_DEFAULTS["settle"], minimum=0,
    )
    for key in ("maintain_interval", "ping_timeout", "bootstrap_timeout"):
        _get_number(
            section, key, "dynamic", default=_DYNAMIC_DEFAULTS[key], above=0
        )
    for key in ("bootstrap_ttl", "overlay_degree"):
        _get_number(
            section, key, "dynamic",
            default=_DYNAMIC_DEFAULTS[key], minimum=1, integer=True,
        )
    if "bootstrap" not in section:
        return
    bootstrap = _require_mapping(section["bootstrap"], "dynamic.bootstrap")
    where = "dynamic.bootstrap"
    kind = _take_kind(bootstrap, ("immediate", "staggered", "waves"), where)
    order = bootstrap.get("order", "by_topic")
    if order not in ("by_topic", "interleaved"):
        raise ConfigError(
            f"{where}: 'order' must be 'by_topic' or 'interleaved', "
            f"got {order!r}"
        )
    if kind == "immediate":
        _reject_unknown_keys(bootstrap, {"kind", "order"}, where)
    elif kind == "staggered":
        _reject_unknown_keys(
            bootstrap, {"kind", "order", "start", "spacing"}, where
        )
        _get_number(bootstrap, "start", where, default=0.0, minimum=0)
        _get_number(bootstrap, "spacing", where, minimum=0)
    else:  # waves
        _reject_unknown_keys(
            bootstrap, {"kind", "order", "start", "wave_size", "interval"}, where
        )
        _get_number(bootstrap, "wave_size", where, minimum=1, integer=True)
        _get_number(bootstrap, "interval", where, above=0)
        _get_number(bootstrap, "start", where, default=0.0, minimum=0)


def _validate_campaign(
    section: Mapping,
    ordered_topics: tuple[Topic, ...],
    hierarchy: TopicHierarchy,
    is_chain: bool,
) -> None:
    _require_mapping(section, "campaign")
    _reject_unknown_keys(section, {"actions"}, "campaign")
    actions = section.get("actions")
    if (
        not isinstance(actions, Sequence)
        or isinstance(actions, str)
        or not actions
    ):
        raise ConfigError(
            "campaign: 'actions' must be a non-empty list of action objects"
        )
    for index, action in enumerate(actions):
        where = f"campaign.actions[{index}]"
        _require_mapping(action, where)
        kind = _take_kind(action, _CAMPAIGN_KINDS, where)
        _get_number(action, "at", where, minimum=0)
        if kind == "kill_fraction":
            _reject_unknown_keys(
                action, {"kind", "at", "fraction", "topic", "level"}, where
            )
            _get_number(action, "fraction", where, minimum=0.0, maximum=1.0)
            _validate_topic_ref(action, ordered_topics, hierarchy, is_chain, where)
        elif kind == "kill_super_links":
            _reject_unknown_keys(action, {"kind", "at", "topic", "level"}, where)
            if "topic" not in action and "level" not in action:
                raise ConfigError(
                    f"{where}: kill_super_links needs a 'topic' or 'level' "
                    "naming the attacked group"
                )
            _validate_topic_ref(action, ordered_topics, hierarchy, is_chain, where)
        elif kind == "recover":
            _reject_unknown_keys(action, {"kind", "at", "fraction"}, where)
            _get_number(
                action, "fraction", where, default=1.0, minimum=0.0, maximum=1.0
            )
        else:  # recover_all
            _reject_unknown_keys(action, {"kind", "at"}, where)


def _validate_latency(
    section: Mapping,
    protocol: str,
    where: str = "latency",
    allow_overrides: bool = True,
) -> None:
    _require_mapping(section, where)
    kind = _take_kind(section, ("constant", "uniform", "exponential"), where)
    allowed = {"kind"}
    if kind == "constant":
        allowed |= {"delay"}
        _get_number(section, "delay", where, default=0.0, minimum=0)
    elif kind == "uniform":
        allowed |= {"low", "high"}
        low = _get_number(section, "low", where, minimum=0)
        high = _get_number(section, "high", where, minimum=0)
        if high < low:
            raise ConfigError(
                f"{where}: need low <= high, got [{low}, {high}]"
            )
    else:  # exponential
        allowed |= {"mean"}
        _get_number(section, "mean", where, above=0)
    if allow_overrides:
        allowed |= {"overrides"}
        if "overrides" in section:
            overrides = _require_mapping(
                section["overrides"], f"{where}.overrides"
            )
            if protocol != "daMulticast":
                raise ConfigError(
                    f"{where}.overrides: per-link-class latency requires "
                    f"protocol 'daMulticast', got {protocol!r}"
                )
            for name, sub in overrides.items():
                if name not in _LINK_CLASSES:
                    raise ConfigError(
                        f"{where}.overrides: unknown link class {name!r}; "
                        f"allowed: {', '.join(_LINK_CLASSES)}"
                    )
                _validate_latency(
                    sub,
                    protocol,
                    where=f"{where}.overrides[{name!r}]",
                    allow_overrides=False,
                )
    _reject_unknown_keys(section, allowed, where)


def _validate_faults(
    section: Mapping,
    protocol: str,
    where: str = "faults",
    allow_overrides: bool = True,
) -> None:
    """Validate one ``faults`` (sub-)section.

    Shape (all keys optional; every sub-section is a mapping so any field
    is reachable by :func:`spec_with` dotted paths, e.g.
    ``faults.loss.p`` or ``faults.overrides.inter.loss.p``)::

        {"loss":        {"kind": "bernoulli", "p": ...}
                      | {"kind": "gilbert_elliott", "p_good_bad": ...,
                         "p_bad_good": ..., "loss_good": ..., "loss_bad": ...}
                      | {"kind": "none"},
         "duplicate":   {"p": ..., "max_copies": ...},
         "delay_spike": {"p": ..., "factor": ...} | {"p": ..., "extra": ...},
         "overrides":   {"intra"/"inter": <same shape, no overrides>}}
    """
    _require_mapping(section, where)
    allowed = {"loss", "duplicate", "delay_spike"}
    if "loss" in section:
        sub = _require_mapping(section["loss"], f"{where}.loss")
        sub_where = f"{where}.loss"
        kind = _take_kind(
            sub, ("none", "bernoulli", "gilbert_elliott"), sub_where
        )
        if kind == "none":
            _reject_unknown_keys(sub, {"kind"}, sub_where)
        elif kind == "bernoulli":
            _reject_unknown_keys(sub, {"kind", "p"}, sub_where)
            _get_number(sub, "p", sub_where, minimum=0.0, maximum=1.0)
        else:  # gilbert_elliott
            _reject_unknown_keys(
                sub,
                {"kind", "p_good_bad", "p_bad_good", "loss_good", "loss_bad"},
                sub_where,
            )
            p_gb = _get_number(
                sub, "p_good_bad", sub_where, minimum=0.0, maximum=1.0
            )
            p_bg = _get_number(
                sub, "p_bad_good", sub_where, minimum=0.0, maximum=1.0
            )
            if p_gb + p_bg <= 0.0:
                raise ConfigError(
                    f"{sub_where}: need p_good_bad + p_bad_good > 0 (both "
                    "zero means the chain never moves)"
                )
            _get_number(
                sub, "loss_good", sub_where,
                default=0.0, minimum=0.0, maximum=1.0,
            )
            _get_number(
                sub, "loss_bad", sub_where,
                default=1.0, minimum=0.0, maximum=1.0,
            )
    if "duplicate" in section:
        sub = _require_mapping(section["duplicate"], f"{where}.duplicate")
        sub_where = f"{where}.duplicate"
        _reject_unknown_keys(sub, {"p", "max_copies"}, sub_where)
        _get_number(sub, "p", sub_where, minimum=0.0, maximum=1.0)
        _get_number(
            sub, "max_copies", sub_where, default=2, minimum=2, integer=True
        )
    if "delay_spike" in section:
        sub = _require_mapping(section["delay_spike"], f"{where}.delay_spike")
        sub_where = f"{where}.delay_spike"
        _reject_unknown_keys(sub, {"p", "factor", "extra"}, sub_where)
        _get_number(sub, "p", sub_where, minimum=0.0, maximum=1.0)
        if ("factor" in sub) == ("extra" in sub):
            raise ConfigError(
                f"{sub_where}: give exactly one of 'factor' (multiplies the "
                "sampled latency) or 'extra' (adds to it)"
            )
        if "factor" in sub:
            _get_number(sub, "factor", sub_where, minimum=1.0)
        else:
            _get_number(sub, "extra", sub_where, minimum=0.0)
    if allow_overrides:
        allowed |= {"overrides"}
        if "overrides" in section:
            overrides = _require_mapping(
                section["overrides"], f"{where}.overrides"
            )
            if protocol != "daMulticast":
                raise ConfigError(
                    f"{where}.overrides: per-link-class faults require "
                    f"protocol 'daMulticast', got {protocol!r}"
                )
            for name, sub in overrides.items():
                if name not in _LINK_CLASSES:
                    raise ConfigError(
                        f"{where}.overrides: unknown link class {name!r}; "
                        f"allowed: {', '.join(_LINK_CLASSES)}"
                    )
                _validate_faults(
                    sub,
                    protocol,
                    where=f"{where}.overrides[{name!r}]",
                    allow_overrides=False,
                )
    _reject_unknown_keys(section, allowed, where)


def _validate_params(
    section: Mapping, protocol: str
) -> tuple[TopicParams, dict[Topic, TopicParams]]:
    _require_mapping(section, "params")
    allowed = set(_PARAM_DEFAULTS) | {"overrides"}
    _reject_unknown_keys(section, allowed, "params")
    merged = dict(_PARAM_DEFAULTS)
    for key in _PARAM_DEFAULTS:
        if key in section:
            merged[key] = _get_number(
                section, key, "params", integer=key in ("z", "tau")
            )
    try:
        defaults = TopicParams(**merged)
    except ConfigError as exc:
        raise ConfigError(f"params: {exc}") from exc
    overrides: dict[Topic, TopicParams] = {}
    if "overrides" in section:
        if protocol != "daMulticast":
            raise ConfigError(
                "params.overrides: per-topic overrides require protocol "
                f"'daMulticast', got {protocol!r}"
            )
        override_map = _require_mapping(section["overrides"], "params.overrides")
        for name, fields in override_map.items():
            topic = _parse_topic(name, "params.overrides")
            where = f"params.overrides[{name!r}]"
            fields = _require_mapping(fields, where)
            _reject_unknown_keys(fields, set(_PARAM_DEFAULTS), where)
            patch = {
                key: _get_number(
                    fields, key, where, integer=key in ("z", "tau")
                )
                for key in _PARAM_DEFAULTS
                if key in fields
            }
            try:
                overrides[topic] = replace(defaults, **patch)
            except ConfigError as exc:
                raise ConfigError(f"{where}: {exc}") from exc
    return defaults, overrides


def _validate_protocol(value: Any) -> tuple[str, dict[str, Any]]:
    if value is None:
        return "daMulticast", {}
    if isinstance(value, str):
        name, options = value, {}
    elif isinstance(value, Mapping):
        _reject_unknown_keys(value, {"name", "n_clusters"}, "protocol")
        name = value.get("name")
        options = {k: v for k, v in value.items() if k != "name"}
    else:
        raise ConfigError(
            f"protocol must be a string or a mapping, got {value!r}"
        )
    if name not in PROTOCOLS:
        raise ConfigError(
            f"protocol must be one of {', '.join(PROTOCOLS)}, got {name!r}"
        )
    if options and name != "hierarchical":
        raise ConfigError(
            f"protocol: options {sorted(options)} are only valid for "
            "'hierarchical'"
        )
    if "n_clusters" in options:
        _get_number(options, "n_clusters", "protocol", minimum=2, integer=True)
    return name, options


# ----------------------------------------------------------------------
# The compiled spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompiledSpec:
    """A validated scenario spec, ready to build per-seed simulations.

    ``spec`` is a deep copy of the input mapping — plain data, picklable,
    so sweep workers can re-compile it locally (compilation is cheap and
    workers never receive live objects).
    """

    spec: dict
    name: str
    description: str
    protocol: str
    protocol_options: dict
    mode: str
    hierarchy: TopicHierarchy
    ordered_topics: tuple[Topic, ...]
    is_chain: bool
    params: TopicParams
    overrides: dict[Topic, TopicParams]
    p_success: float

    # ------------------------------------------------------------------
    # Per-seed realization
    # ------------------------------------------------------------------
    def _population(self, seed: int) -> dict[Topic, int]:
        section = self.spec["subscriptions"]
        kind = section["kind"]
        if kind == "per_level":
            return dict(zip(self.ordered_topics, section["counts"]))
        if kind == "explicit":
            return {
                Topic.parse(name): count
                for name, count in sorted(section["counts"].items())
            }
        rng = random.Random(derive_seed(seed, "spec/subscriptions"))
        if kind == "uniform":
            return uniform_subscriptions(
                self.hierarchy,
                section["n"],
                rng,
                include_root=section.get("include_root", True),
            )
        return zipf_subscriptions(
            self.hierarchy,
            section["n"],
            rng,
            exponent=section.get("exponent", 1.0),
            include_root=section.get("include_root", False),
        )

    def _resolve_target(
        self, section: Mapping, counts: Mapping[Topic, int], where: str
    ) -> Topic:
        if "topic" in section:
            topic = Topic.parse(section["topic"])
        elif "level" in section:
            topic = self.ordered_topics[section["level"]]
        else:
            populated = [t for t, c in counts.items() if c > 0]
            topic = max(populated, key=lambda t: (t.depth, t.name))
        if counts.get(topic, 0) < 1:
            raise ConfigError(
                f"{where}: publication topic {topic.name!r} has no "
                "subscribers under this population"
            )
        return topic

    def _realize_schedule(
        self,
        section: Mapping,
        seed: int,
        counts: Mapping[Topic, int],
        stream: str,
        where: str,
    ) -> list[ScheduledPublication]:
        kind = section["kind"]
        if kind == "single":
            topic = self._resolve_target(section, counts, where)
            return single_shot(topic, at=section.get("at", 0.0))
        if kind == "burst":
            topic = self._resolve_target(section, counts, where)
            return burst_schedule(
                topic,
                count=section["count"],
                start=section.get("start", 0.0),
                spacing=section.get("spacing", 0.0),
            )
        if kind == "poisson":
            if "topics" in section:
                topics = [
                    self._resolve_target({"topic": name}, counts, where)
                    for name in section["topics"]
                ]
            elif "levels" in section:
                topics = [
                    self._resolve_target({"level": level}, counts, where)
                    for level in section["levels"]
                ]
            else:
                topics = sorted(t for t, c in counts.items() if c > 0)
            schedule = PoissonSchedule(
                topics,
                rate=section["rate"],
                horizon=section["horizon"],
                weights=section.get("weights"),
            )
            # repro-lint: allow[DET004]: stream is 'spec/publications' or its '/{index}' extension built by the mixed-parts recursion below
            return schedule.generate(random.Random(derive_seed(seed, stream)))
        # mixed: realize every part on its own stream, merge time-sorted
        merged: list[ScheduledPublication] = []
        for index, part in enumerate(section["parts"]):
            merged.extend(
                self._realize_schedule(
                    part,
                    seed,
                    counts,
                    stream=f"{stream}/{index}",
                    where=f"{where}.parts[{index}]",
                )
            )
        merged.sort(key=lambda publication: publication.time)
        return merged

    def _make_system(self, seed: int, counts: Mapping[Topic, int]):
        latency_model = self._latency_model()
        if self.protocol == "daMulticast":
            config = DaMulticastConfig(
                default_params=self.params, overrides=dict(self.overrides)
            )
            system = DaMulticastSystem(
                config=config,
                seed=seed,
                p_success=self.p_success,
                latency=latency_model,
                mode="static",
            )
            if isinstance(latency_model, LinkClassLatency):
                latency_model.bind(_topic_link_classifier(system))
            return system
        common = dict(
            seed=seed,
            p_success=self.p_success,
            latency=latency_model,
            b=self.params.b,
            c=self.params.c,
            log_base=self.params.fanout_log_base,
        )
        if self.protocol == "broadcast":
            return GossipBroadcastSystem(**common)
        if self.protocol == "multicast":
            return GossipMulticastSystem(**common)
        if self.protocol == "naive":
            return NaivePublisherSystem(**common)
        total = sum(counts.values())
        n_clusters = self.protocol_options.get(
            "n_clusters", max(2, round(total**0.5 / 3))
        )
        return HierarchicalGossipSystem(n_clusters=n_clusters, **common)

    def _apply_failures(
        self,
        system,
        publishers: Mapping[Topic, Any],
        counts: Mapping[Topic, int],
        rng: random.Random,
    ) -> None:
        section = self.spec.get("failures", {"kind": "none"})
        kind = section["kind"]
        if kind == "none":
            return
        network = system.harness.network
        all_pids = [process.pid for process in system.processes]
        protected = sorted({process.pid for process in publishers.values()})
        if kind == "stillborn":
            network.failure_model = sample_stillborn(
                all_pids,
                section["alive_fraction"],
                rng,
                protected=protected,
            )
        elif kind == "dynamic":
            network.failure_model = DynamicFailures(
                fail_probability=1.0 - section["alive_fraction"],
                mode=section.get("mode", "per_attempt"),
            )
        elif kind == "churn":
            candidates = [pid for pid in all_pids if pid not in set(protected)]
            network.failure_model = ChurnSchedule.random_churn(
                candidates,
                rng,
                crash_probability=section["crash_probability"],
                horizon=section["horizon"],
                recover_probability=section.get("recover_probability", 0.5),
            )
        else:  # partition
            islands_spec = section["islands"]
            if islands_spec == "by_topic":
                islands = [
                    [process.pid for process in _members(system, topic)]
                    for topic in sorted(counts)
                    if counts[topic] > 0
                ]
            else:
                assignment = {
                    pid: rng.randrange(islands_spec) for pid in all_pids
                }
                islands = [
                    [pid for pid in all_pids if assignment[pid] == index]
                    for index in range(islands_spec)
                ]
            network.partition_model = StaticPartition(
                islands, heals_at=section.get("heals_at")
            )

    # ------------------------------------------------------------------
    # Dynamic-mode realization
    # ------------------------------------------------------------------
    def _latency_model(self) -> LatencyModel:
        section = self.spec.get("latency")
        if section is None:
            return ZERO_LATENCY
        default = _make_latency(section)
        overrides_spec = section.get("overrides")
        if not overrides_spec:
            return default
        overrides = {
            name: _make_latency(sub)
            for name, sub in sorted(overrides_spec.items())
        }
        return LinkClassLatency(default, overrides)

    def _faults_model(self) -> LinkFaultModel | None:
        """Fresh fault-model instances for one build (per-link state like
        Gilbert–Elliott's must never leak across builds); None when the
        spec configures no fault stage at all."""
        section = self.spec.get("faults")
        if section is None:
            return None
        default = _make_fault_pipeline(section)
        overrides_spec = section.get("overrides")
        if not overrides_spec:
            return default
        overrides = {
            name: model
            for name, sub in sorted(overrides_spec.items())
            if (model := _make_fault_pipeline(sub)) is not None
        }
        if not overrides:
            return default
        return LinkClassFaults(default or NO_FAULTS, overrides)

    def _install_faults(self, system, seed: int) -> None:
        """Install the spec's fault model on the built system's network.

        The coins come from the dedicated ``spec/faults`` stream, so
        installing a model never perturbs the network/latency draw
        sequence — a 0%-loss point of a sweep replays the exact fault-free
        trajectory.
        """
        model = self._faults_model()
        if model is None:
            return
        if isinstance(model, LinkClassFaults):
            model.bind(_topic_link_classifier(system))
        system.harness.network.install_faults(
            model, random.Random(derive_seed(seed, "spec/faults"))
        )

    def _dynamic_settings(self) -> dict[str, Any]:
        section = self.spec.get("dynamic", {})
        return {
            key: section.get(key, default)
            for key, default in _DYNAMIC_DEFAULTS.items()
        }

    def _join_plan(
        self, counts: Mapping[Topic, int]
    ) -> list[tuple[float, Topic]]:
        """The bootstrap arrival schedule: one (join time, topic) per process.

        ``by_topic`` order is root-first (each group fully joins before its
        subgroups start bootstrapping toward it); ``interleaved`` round-robins
        across groups so every wave mixes all hierarchy levels.
        """
        section = self.spec.get("dynamic", {}).get(
            "bootstrap", {"kind": "immediate"}
        )
        kind = section["kind"] if "kind" in section else "immediate"
        topics = [
            topic
            for topic in sorted(counts, key=lambda t: (t.depth, t.name))
            if counts[topic] > 0
        ]
        if section.get("order", "by_topic") == "by_topic":
            sequence = [
                topic for topic in topics for _ in range(counts[topic])
            ]
        else:  # interleaved
            remaining = {topic: counts[topic] for topic in topics}
            sequence = []
            while remaining:
                for topic in topics:
                    if remaining.get(topic, 0):
                        sequence.append(topic)
                        remaining[topic] -= 1
                        if not remaining[topic]:
                            del remaining[topic]
        if kind == "immediate":
            return [(0.0, topic) for topic in sequence]
        start = section.get("start", 0.0)
        if kind == "staggered":
            spacing = section["spacing"]
            return [
                (start + index * spacing, topic)
                for index, topic in enumerate(sequence)
            ]
        # waves
        wave_size = section["wave_size"]
        interval = section["interval"]
        return [
            (start + (index // wave_size) * interval, topic)
            for index, topic in enumerate(sequence)
        ]

    def _campaign_target(self, action: Mapping) -> Topic | None:
        if "topic" in action:
            return Topic.parse(action["topic"])
        if "level" in action:
            return self.ordered_topics[action["level"]]
        return None

    def _schedule_campaign(
        self, campaign: FailureCampaign, actions: Sequence[Mapping]
    ) -> None:
        for action in actions:
            kind = action["kind"]
            at = action["at"]
            if kind == "kill_fraction":
                campaign.kill_fraction(
                    at, action["fraction"], topic=self._campaign_target(action)
                )
            elif kind == "kill_super_links":
                campaign.kill_super_links(at, self._campaign_target(action))
            elif kind == "recover":
                campaign.recover_fraction(at, action.get("fraction", 1.0))
            else:  # recover_all
                campaign.recover_all(at)

    def _build_dynamic(
        self, seed: int, counts: Mapping[Topic, int]
    ) -> "BuiltScenario":
        """Assemble a full-protocol run: staggered joins, maintenance,
        optional campaign, publications offset by the warmup, horizon-bound.
        """
        settings = self._dynamic_settings()
        joins = self._join_plan(counts)
        failures = self.spec.get("failures", {"kind": "none"})
        campaign_spec = self.spec.get("campaign")
        failure_model = None
        if failures["kind"] == "churn":
            # Pids are assigned 0..N-1 in join order, so the churn timeline
            # can be realized over the full pid space before any process
            # exists — a pid crashed before its join simply joins dead.
            failure_model = ChurnSchedule.random_churn(
                range(sum(counts.values())),
                random.Random(derive_seed(seed, "spec/churn")),
                crash_probability=failures["crash_probability"],
                horizon=failures["horizon"],
                recover_probability=failures.get("recover_probability", 0.5),
            )
        elif failures["kind"] == "dynamic":
            failure_model = DynamicFailures(
                fail_probability=1.0 - failures["alive_fraction"],
                mode=failures.get("mode", "per_attempt"),
            )
        elif campaign_spec is not None:
            failure_model = ChurnSchedule()
        latency_model = self._latency_model()
        config = DaMulticastConfig(
            default_params=self.params,
            overrides=dict(self.overrides),
            maintain_interval=settings["maintain_interval"],
            bootstrap_timeout=settings["bootstrap_timeout"],
            bootstrap_ttl=settings["bootstrap_ttl"],
            ping_timeout=settings["ping_timeout"],
        )
        system = DaMulticastSystem(
            config=config,
            seed=seed,
            p_success=self.p_success,
            latency=latency_model,
            failure_model=failure_model,
            mode="dynamic",
            overlay_degree=settings["overlay_degree"],
        )
        if isinstance(latency_model, LinkClassLatency):
            latency_model.bind(_topic_link_classifier(system))
        self._install_faults(system, seed)
        for time, topic in joins:
            system.engine.schedule_at(
                time, functools.partial(system.add_process, topic)
            )
        campaign = None
        if campaign_spec is not None:
            campaign = FailureCampaign(
                system,
                failure_model,
                random.Random(derive_seed(seed, "spec/campaign")),
            )
            self._schedule_campaign(campaign, campaign_spec["actions"])
        schedule = self._realize_schedule(
            self.spec.get("publications", {"kind": "single"}),
            seed,
            counts,
            stream="spec/publications",
            where="publications",
        )
        warmup = settings["warmup"]
        shifted = [
            ScheduledPublication(warmup + publication.time, publication.topic)
            for publication in schedule
        ]
        last_action = (
            max(action["at"] for action in campaign_spec["actions"])
            if campaign_spec
            else 0.0
        )
        horizon = (
            max(
                max((time for time, _ in joins), default=0.0),
                max((publication.time for publication in shifted), default=0.0),
                last_action,
            )
            + settings["settle"]
        )
        return BuiltScenario(
            compiled=self,
            seed=seed,
            system=system,
            counts=dict(counts),
            schedule=shifted,
            publishers=None,
            horizon=horizon,
            campaign=campaign,
        )

    def build(self, seed: int) -> "BuiltScenario":
        """Assemble the ready-to-run simulation for one seed."""
        counts = self._population(seed)
        if self.mode == "dynamic":
            return self._build_dynamic(seed, counts)
        system = self._make_system(seed, counts)
        self._install_faults(system, seed)
        populate_system(system, counts)
        schedule = self._realize_schedule(
            self.spec.get("publications", {"kind": "single"}),
            seed,
            counts,
            stream="spec/publications",
            where="publications",
        )
        scenario_rng = random.Random(derive_seed(seed, "spec/scenario"))
        publishers = {
            topic: scenario_rng.choice(_members(system, topic))
            for topic in sorted({publication.topic for publication in schedule})
        }
        self._apply_failures(system, publishers, counts, scenario_rng)
        if self.protocol == "daMulticast":
            system.finalize_static_membership()
        else:
            system.finalize_membership()
        return BuiltScenario(
            compiled=self,
            seed=seed,
            system=system,
            counts=counts,
            schedule=schedule,
            publishers=publishers,
        )

    def run(self, seed: int) -> dict[str, float]:
        """Build, replay the schedule to quiescence, return metrics."""
        return self.build(seed).execute()


def _members(system, topic: Topic) -> list:
    """Processes subscribed to exactly ``topic`` on either system family."""
    if hasattr(system, "subscribers_of"):
        return system.subscribers_of(topic)
    return system.group(topic)


def _make_fault_pipeline(section: Mapping) -> LinkFaultModel | None:
    """One validated faults sub-section → a composed model, or None.

    Stages compose loss → duplicate → delay_spike (a lost message cannot
    be duplicated or delayed). Returns None when no stage is configured —
    the caller then installs nothing, so the fault RNG stream is never
    consulted and the run is bit-identical to a spec without ``faults``.
    A configured stage with ``p == 0`` *is* installed (it draws but never
    fires), so every point of a loss-rate sweep — including 0 — pays the
    same draw sequence and differs only in coin outcomes.
    """
    stages: list[LinkFaultModel] = []
    loss = section.get("loss")
    if loss is not None and loss["kind"] != "none":
        if loss["kind"] == "bernoulli":
            stages.append(BernoulliLoss(loss["p"]))
        else:
            stages.append(
                GilbertElliott(
                    loss["p_good_bad"],
                    loss["p_bad_good"],
                    loss_good=loss.get("loss_good", 0.0),
                    loss_bad=loss.get("loss_bad", 1.0),
                )
            )
    duplicate = section.get("duplicate")
    if duplicate is not None:
        stages.append(
            DuplicateModel(duplicate["p"], duplicate.get("max_copies", 2))
        )
    spike = section.get("delay_spike")
    if spike is not None:
        stages.append(
            DelaySpike(
                spike["p"],
                factor=spike.get("factor"),
                extra=spike.get("extra"),
            )
        )
    if not stages:
        return None
    if len(stages) == 1:
        return stages[0]
    return FaultPipeline(stages)


def _make_latency(section: Mapping) -> LatencyModel:
    """One validated latency sub-section → a latency model instance."""
    kind = section["kind"]
    if kind == "constant":
        return ConstantLatency(section.get("delay", 0.0))
    if kind == "uniform":
        return UniformLatency(section["low"], section["high"])
    return ExponentialLatency(section["mean"])


def _topic_link_classifier(system: DaMulticastSystem):
    """Classify links as ``intra`` (same group) / ``inter`` (cross-group)."""
    topic_of = system.topic_of

    def classify(sender: int, target: int) -> str | None:
        sender_topic = topic_of(sender)
        target_topic = topic_of(target)
        if sender_topic is None or target_topic is None:
            return None
        return "intra" if sender_topic == target_topic else "inter"

    return classify


@dataclass
class BuiltScenario:
    """A built spec plus the handles examples and metrics need.

    Static builds run to quiescence; dynamic builds carry a ``horizon``
    (derived from joins, publications, campaign actions and the settle
    time) and run exactly that far — the full protocol's periodic tasks
    never idle. ``publishers`` is None in dynamic mode: the publisher is
    drawn among the members *alive at publication time*, which a build-time
    pin cannot know.
    """

    compiled: CompiledSpec
    seed: int
    system: Any
    counts: dict[Topic, int]
    schedule: list[ScheduledPublication]
    publishers: dict[Topic, Any] | None
    published: list = field(default_factory=list)
    executed: bool = False
    horizon: float | None = None
    campaign: FailureCampaign | None = None

    def execute(self) -> dict[str, float]:
        """Replay the publication schedule (to quiescence, or to the
        dynamic horizon); return metrics."""
        if self.executed:
            raise ConfigError(
                "scenario already executed; build a fresh one to re-run"
            )
        self.published = replay_on(
            self.system, self.schedule, publishers=self.publishers
        )
        if self.horizon is None:
            self.system.run_until_idle()
        else:
            self.system.run(until=self.horizon)
        self.executed = True
        return self.metrics()

    def metrics(self) -> dict[str, float]:
        """The standard scenario metrics dict (all values floats).

        Keys are population-independent so repeated runs of one spec always
        aggregate cleanly (``aggregate_runs`` requires identical key sets).
        """
        system = self.system
        events = len(self.published)
        event_messages = float(system.stats.event_messages_sent())
        alive_fractions: list[float] = []
        all_fractions: list[float] = []
        for event in self.published:
            alive_fractions.append(
                system.delivered_fraction(event, event.topic, alive_only=True)
            )
            all_fractions.append(
                system.delivered_fraction(event, event.topic, alive_only=False)
            )
        parasites = parasite_deliveries(system.tracker, system.interests())
        out = {
            "events": float(events),
            "event_messages": event_messages,
            "messages_per_event": event_messages / events if events else 0.0,
            "mean_delivery": (
                statistics.fmean(alive_fractions) if alive_fractions else 1.0
            ),
            "min_delivery": min(alive_fractions) if alive_fractions else 1.0,
            "mean_delivery_all": (
                statistics.fmean(all_fractions) if all_fractions else 1.0
            ),
            "parasites": float(parasites),
            "processes": float(len(system.processes)),
            "subscribed_topics": float(
                sum(1 for count in self.counts.values() if count > 0)
            ),
        }
        # Zero-filled over the full reason vocabularies (not just reasons
        # that fired) so every run of every spec emits the same key set.
        for reason in DROP_REASONS:
            out[f"dropped_{reason}"] = float(
                system.stats.dropped_by_reason.get(reason, 0)
            )
        for reason in FAULT_REASONS:
            out[f"faults_{reason}"] = float(
                system.stats.faults_by_reason.get(reason, 0)
            )
        return out

    # ------------------------------------------------------------------
    # Graceful-degradation queries (post-execute)
    # ------------------------------------------------------------------
    def delivery_windows(self, window: float) -> list[WindowPoint]:
        """Sliding-window delivery-ratio series of this run (event time).

        See :func:`repro.metrics.degradation.delivery_ratio_series`; the
        repair time after a fault/failure window is
        :func:`repro.metrics.degradation.time_to_repair` over this series.
        """
        return delivery_ratio_series(self.system.tracker, window)

    def degradation(self) -> dict[str, dict[str, float | int | None]]:
        """Per-topic delivered fractions (delivered / expected-at-publish).

        One sweep point of a delivered-fraction-vs-loss-rate reliability
        curve; see :func:`repro.metrics.degradation.degradation_summary`.
        """
        return degradation_summary(self.system.tracker)


# ----------------------------------------------------------------------
# Compilation entry point
# ----------------------------------------------------------------------
def compile_spec(spec: Mapping) -> CompiledSpec:
    """Validate ``spec`` and return a :class:`CompiledSpec`.

    Every structural or domain problem raises a :class:`ConfigError`
    naming the offending section, key and value.
    """
    _require_mapping(spec, "spec")
    _reject_unknown_keys(spec, _TOP_KEYS, "spec")
    if "topics" not in spec:
        raise ConfigError("spec: missing required section 'topics'")
    if "subscriptions" not in spec:
        raise ConfigError("spec: missing required section 'subscriptions'")
    name = spec.get("name", "unnamed")
    if not isinstance(name, str) or not name:
        raise ConfigError(f"spec: 'name' must be a non-empty string, got {name!r}")
    description = spec.get("description", "")
    if not isinstance(description, str):
        raise ConfigError("spec: 'description' must be a string")

    mode = spec.get("mode", "static")
    if mode not in ("static", "dynamic"):
        raise ConfigError(
            f"spec: 'mode' must be 'static' or 'dynamic', got {mode!r}"
        )

    protocol, protocol_options = _validate_protocol(spec.get("protocol"))
    hierarchy, ordered_topics, is_chain = _validate_topics(spec["topics"])
    _validate_subscriptions(
        spec["subscriptions"], hierarchy, ordered_topics, is_chain
    )
    _validate_publications(
        spec.get("publications", {"kind": "single"}),
        ordered_topics,
        hierarchy,
        is_chain,
    )
    failures = spec.get("failures", {"kind": "none"})
    _validate_failures(failures)
    if mode == "dynamic":
        if protocol != "daMulticast":
            raise ConfigError(
                "spec: mode 'dynamic' requires protocol 'daMulticast' "
                f"(the baselines have no dynamic protocol), got {protocol!r}"
            )
        failures_kind = failures.get("kind")
        if failures_kind in ("stillborn", "partition"):
            raise ConfigError(
                f"failures: kind {failures_kind!r} is a static-mode plan; "
                "dynamic mode supports 'none', 'churn' or 'dynamic'"
            )
        if "dynamic" in spec:
            _validate_dynamic(spec["dynamic"])
        if "campaign" in spec:
            if failures_kind == "dynamic":
                raise ConfigError(
                    "campaign: cannot combine with 'dynamic' failures — a "
                    "campaign drives a crash/recover (churn) failure model"
                )
            _validate_campaign(
                spec["campaign"], ordered_topics, hierarchy, is_chain
            )
    else:
        for section in ("dynamic", "campaign"):
            if section in spec:
                raise ConfigError(
                    f"spec: the {section!r} section requires mode 'dynamic'"
                )
    if "latency" in spec:
        _validate_latency(spec["latency"], protocol)
    if "faults" in spec:
        _validate_faults(spec["faults"], protocol)
    params, overrides = _validate_params(spec.get("params", {}), protocol)
    p_success = _get_number(
        spec, "p_success", "spec", default=1.0, minimum=0.0, maximum=1.0
    )

    normalized = copy.deepcopy(dict(spec))
    normalized.setdefault("publications", {"kind": "single"})
    normalized.setdefault("failures", {"kind": "none"})
    return CompiledSpec(
        spec=normalized,
        name=name,
        description=description,
        protocol=protocol,
        protocol_options=dict(protocol_options),
        mode=mode,
        hierarchy=hierarchy,
        ordered_topics=ordered_topics,
        is_chain=is_chain,
        params=params,
        overrides=overrides,
        p_success=float(p_success),
    )


#: Process-local memo of compiled specs, keyed by :func:`spec_digest`.
#: Bounded LRU: a sweep touches one base spec plus one variant per swept
#: value, so a handful of entries covers a whole sweep; the bound only
#: guards against unbounded growth across many different sweeps in one
#: long-lived process.
_COMPILE_CACHE: OrderedDict[str, CompiledSpec] = OrderedDict()
_COMPILE_CACHE_LIMIT = 32


def compile_spec_cached(spec: Mapping) -> CompiledSpec:
    """:func:`compile_spec`, memoized per :func:`spec_digest`.

    This is what makes warm pool workers cheap: every cell of a sweep
    reaches :func:`run_spec` in the same worker process, and with the
    memo the spec validates and compiles once per distinct spec digest —
    not once per cell. Safe because a :class:`CompiledSpec` is treated
    as immutable after compilation (``run(seed)`` builds fresh per-seed
    state every call).
    """
    key = spec_digest(spec)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        _COMPILE_CACHE.move_to_end(key)
        return cached
    compiled = compile_spec(spec)
    _COMPILE_CACHE[key] = compiled
    if len(_COMPILE_CACHE) > _COMPILE_CACHE_LIMIT:
        _COMPILE_CACHE.popitem(last=False)
    return compiled


def run_spec(spec: Mapping, seed: int = 0) -> dict[str, float]:
    """Compile, build and run ``spec`` for one seed; a pure function of
    ``(spec, seed)`` — same inputs, bit-identical metrics, any process.

    Compilation is memoized per spec digest (:func:`compile_spec_cached`),
    so repeated calls with the same spec — the shape of every sweep cell
    in a warm pool worker — pay the validation cost once."""
    return compile_spec_cached(spec).run(seed)


# ----------------------------------------------------------------------
# Spec manipulation, digests, loading
# ----------------------------------------------------------------------
def spec_with(spec: Mapping, path: str, value: Any) -> dict:
    """A deep copy of ``spec`` with the dotted ``path`` set to ``value``.

    Paths address nested mappings (``"failures.alive_fraction"``);
    missing intermediate mappings are created, so sweeping a field of an
    absent optional section still works (validation of the completed
    section happens at compile time).
    """
    parts = path.split(".")
    if not path or any(not part for part in parts):
        raise ConfigError(f"invalid spec path {path!r}")
    result = copy.deepcopy(dict(spec))
    node = result
    for part in parts[:-1]:
        child = node.get(part)
        if child is None:
            child = node[part] = {}
        elif not isinstance(child, dict):
            raise ConfigError(
                f"spec path {path!r}: {part!r} is not a mapping"
            )
        node = child
    node[parts[-1]] = value
    return result


def metrics_digest(metrics) -> str:
    """SHA-256 hex digest of a metrics dict (or list of them).

    Canonical JSON (sorted keys, no whitespace), so two runs digest
    equal iff their metrics are bit-identical.
    """
    payload = json.dumps(
        metrics, sort_keys=True, separators=(",", ":"), default=float
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def spec_digest(spec: Mapping) -> str:
    """SHA-256 hex digest of a spec mapping in canonical JSON.

    Two specs digest equal iff they are the same plain data — the
    identity key for the compile memo (:func:`compile_spec_cached`) and
    for artifact-store run keys
    (:class:`~repro.experiments.artifacts.ArtifactStore`).
    """
    payload = json.dumps(
        dict(spec), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_spec(ref: str) -> dict:
    """Load a spec from a JSON file path or a bundled preset name."""
    path = pathlib.Path(ref)
    if path.suffix == ".json" or path.is_file():
        if not path.is_file():
            raise ConfigError(f"spec file {ref!r} not found")
        try:
            loaded = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"spec file {ref!r} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(loaded, dict):
            raise ConfigError(
                f"spec file {ref!r} must contain a JSON object"
            )
        return loaded
    from repro.workloads.presets import load_preset

    return load_preset(ref)


# ----------------------------------------------------------------------
# Repetition and sweeping (bit-identical for any jobs count)
# ----------------------------------------------------------------------
def _scenario_cell(_run_index: int, seed: int, *, spec: dict) -> dict[str, float]:
    return run_spec(spec, seed)


def run_scenario(
    spec: Mapping,
    *,
    runs: int = 1,
    master_seed: int = 0,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    label: str | None = None,
    jobs: int | None = None,
) -> list[dict[str, float]]:
    """Run ``spec`` ``runs`` times with derived seeds; per-run metrics.

    Run ``j`` uses ``derive_seed(master_seed, f"{label}/{j}")``; cells
    run on ``executor`` (None = serial; ``"pool:N"``/``"warm:N"`` or an
    Executor instance) and the result list is identical for every
    backend and worker count. ``jobs`` is the deprecated pre-executor
    keyword. Aggregate with
    :func:`~repro.experiments.runner.aggregate_runs`.
    """
    resolved = coerce_executor(executor, jobs=jobs)
    compiled = compile_spec_cached(spec)
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    label = label or f"scenario/{compiled.name}"
    cells = [
        SweepCell(arg=j, seed_name=f"{label}/{j}", describe=f"run={j}")
        for j in range(runs)
    ]
    return run_cells(
        functools.partial(_scenario_cell, spec=compiled.spec),
        cells,
        master_seed=master_seed,
        executor=resolved,
        on_result=grouped_progress(progress, [float(j) for j in range(runs)], 1),
    )


def _sweep_spec_cell(
    value: Any, seed: int, *, spec: dict, sweep_field: str
) -> dict[str, float]:
    return run_spec(spec_with(spec, sweep_field, value), seed)


def sweep_scenario(
    spec: Mapping,
    sweep_field: str,
    values: Sequence[Any],
    *,
    runs: int = 3,
    master_seed: int = 0,
    executor: ExecutorSpec = None,
    progress: ProgressFn | None = None,
    label: str | None = None,
    jobs: int | None = None,
) -> SweepResult:
    """Sweep ``spec`` over any dotted field; aggregated metrics per value.

    Numeric grids go through :func:`~repro.experiments.runner.run_sweep`
    unchanged; non-numeric values (protocol names, failure kinds, ...) use
    the same cell scheduler and the identical ``{label}/{value}/{j}`` seed
    naming, so both paths are bit-identical across executors and worker
    counts. ``jobs`` is the deprecated pre-executor keyword.
    """
    resolved = coerce_executor(executor, jobs=jobs)
    if not values:
        raise ConfigError("sweep values must not be empty")
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    base = copy.deepcopy(dict(spec))
    # Validate every point spec eagerly in the parent: a typo'd field or a
    # bad value should fail before any worker spins up.
    for value in values:
        compile_spec(spec_with(base, sweep_field, value))
    name = base.get("name", "spec")
    label = label or f"scenario/{name}/{sweep_field}"
    run = functools.partial(_sweep_spec_cell, spec=base, sweep_field=sweep_field)
    numeric = all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in values
    )
    if numeric:
        return run_sweep(
            run,
            list(values),
            runs=runs,
            master_seed=master_seed,
            label=label,
            executor=resolved,
            progress=progress,
        )
    cells = [
        SweepCell(
            arg=value,
            seed_name=f"{label}/{value}/{j}",
            describe=f"point={value!r}, run={j}",
        )
        for value in values
        for j in range(runs)
    ]
    samples = run_cells(
        run,
        cells,
        master_seed=master_seed,
        executor=resolved,
        on_result=grouped_progress(progress, list(values), runs),
    )
    result = SweepResult(runs=runs)
    for index, value in enumerate(values):
        means, stds = aggregate_runs(samples[index * runs : (index + 1) * runs])
        result.points.append(value)
        # repro-lint: allow[DET003]: aggregate_runs returns dicts with sorted keys
        for key, mean in means.items():
            result.means.setdefault(key, []).append(mean)
        # repro-lint: allow[DET003]: aggregate_runs returns dicts with sorted keys
        for key, std in stds.items():
            result.stds.setdefault(key, []).append(std)
    return result
