"""Workload generation: scenarios, subscription populations, publications.

* :mod:`~repro.workloads.scenarios` — the §VII paper scenario (t=3 chain,
  1000/100/10 subscribers, b=3 c=5 g=5 a=1 z=3, p_succ=0.85, publication
  on T2) plus parameterized variants,
* :mod:`~repro.workloads.subscriptions` — subscription distributions over
  a hierarchy (per-level counts, uniform, Zipf-popularity),
* :mod:`~repro.workloads.publications` — publication schedules
  (single-shot, Poisson, bursts) for multi-event experiments.
"""

from repro.workloads.scenarios import PaperScenario, ScenarioRun
from repro.workloads.subscriptions import (
    per_level_counts,
    uniform_subscriptions,
    zipf_subscriptions,
)
from repro.workloads.publications import (
    PoissonSchedule,
    burst_schedule,
    replay_on,
    single_shot,
)

__all__ = [
    "PaperScenario",
    "ScenarioRun",
    "per_level_counts",
    "uniform_subscriptions",
    "zipf_subscriptions",
    "single_shot",
    "burst_schedule",
    "replay_on",
    "PoissonSchedule",
]
