"""Workload generation: scenarios, subscription populations, publications.

* :mod:`~repro.workloads.scenarios` — the §VII paper scenario (t=3 chain,
  1000/100/10 subscribers, b=3 c=5 g=5 a=1 z=3, p_succ=0.85, publication
  on T2) plus parameterized variants,
* :mod:`~repro.workloads.subscriptions` — subscription distributions over
  a hierarchy (per-level counts, uniform, Zipf-popularity),
* :mod:`~repro.workloads.publications` — publication schedules
  (single-shot, Poisson, bursts) for multi-event experiments,
* :mod:`~repro.workloads.spec` — declarative scenario specs (plain
  dict/JSON) composing all of the above with failure plans and protocol
  choice into runnable, sweepable simulations,
* :mod:`~repro.workloads.presets` — bundled, named preset specs
  (``paper-vii``, ``zipf-feed``, ``news-burst``, ``churn-heavy``,
  ``partition-heal``, ``baseline-compare``).
"""

from repro.workloads.scenarios import PaperScenario, ScenarioRun
from repro.workloads.subscriptions import (
    per_level_counts,
    uniform_subscriptions,
    zipf_subscriptions,
)
from repro.workloads.publications import (
    PoissonSchedule,
    burst_schedule,
    replay_on,
    single_shot,
)
from repro.workloads.spec import (
    CompiledSpec,
    compile_spec,
    load_spec,
    metrics_digest,
    run_scenario,
    run_spec,
    spec_with,
    sweep_scenario,
)

__all__ = [
    "PaperScenario",
    "ScenarioRun",
    "per_level_counts",
    "uniform_subscriptions",
    "zipf_subscriptions",
    "single_shot",
    "burst_schedule",
    "replay_on",
    "PoissonSchedule",
    "CompiledSpec",
    "compile_spec",
    "load_spec",
    "metrics_digest",
    "run_scenario",
    "run_spec",
    "spec_with",
    "sweep_scenario",
]
