"""The §VII simulation scenario, as a reusable builder.

"The number of levels t in the topic hierarchy is set to 3 (T0, T1, T2
...). The number of subscribers S_Ti is 1000 for T2, 100 for T1 and 10
for T0. b is set to 3 for all groups. c is equal to 5 for all groups. g
is set to 5 for all groups. a is equal to 1 for all groups. z is equal
to 3 for all groups. The probability for an event to be received is set
to an arbitrary value of 0.85. ... the events disseminated in the
simulation belong to topic T2."

The fan-out logarithm base defaults to 10 to match the paper's own
simulator scale (Fig. 8 peaks at ≈8000 = 1000·(log10(1000)+5) messages;
DESIGN.md note 2). Pass ``fanout_log_base=math.e`` for the theory-faithful
variant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.events import Event
from repro.core.params import DaMulticastConfig, TopicParams
from repro.core.system import DaMulticastSystem
from repro.errors import ConfigError
from repro.failures.dynamic import DynamicFailures
from repro.failures.stillborn import sample_stillborn
from repro.sim.rng import derive_seed
from repro.topics.builders import chain
from repro.topics.topic import Topic


@dataclass(frozen=True)
class PaperScenario:
    """All §VII constants in one place (overridable per experiment)."""

    #: group sizes from the root (T0) down to the publication topic
    sizes: Sequence[int] = (10, 100, 1000)
    b: float = 3.0
    c: float = 5.0
    g: float = 5.0
    a: float = 1.0
    z: int = 3
    p_succ: float = 0.85
    fanout_log_base: float = 10.0
    #: index (into the chain, root-first) of the publication topic;
    #: -1 = the bottom-most topic, the paper's choice
    publish_level: int = -1

    def __post_init__(self) -> None:
        if len(self.sizes) < 1:
            raise ConfigError("scenario needs at least one level")

    @property
    def depth(self) -> int:
        """Chain depth below the root (sizes has depth+1 entries)."""
        return len(self.sizes) - 1

    def topics(self) -> list[Topic]:
        """The chain topics, root first: [T0, T1, ..., Tt]."""
        return chain(self.depth, prefix="t")

    def params(self) -> TopicParams:
        """The per-group protocol parameters."""
        return TopicParams(
            b=self.b,
            c=self.c,
            g=self.g,
            a=self.a,
            z=self.z,
            fanout_log_base=self.fanout_log_base,
        )

    def config(self) -> DaMulticastConfig:
        """The system configuration."""
        return DaMulticastConfig(default_params=self.params())

    # ------------------------------------------------------------------
    # One experiment run
    # ------------------------------------------------------------------
    def build(
        self,
        *,
        seed: int,
        alive_fraction: float = 1.0,
        failure_mode: str = "stillborn",
    ) -> "ScenarioRun":
        """Assemble a ready-to-publish static system.

        ``failure_mode``: ``"stillborn"`` (Figs. 8-10: a random
        ``1-alive_fraction`` of processes dead from t=0, publisher
        protected) or ``"dynamic"`` (Fig. 11: everyone alive, each
        transmission independently blocked with probability
        ``1-alive_fraction``).
        """
        if failure_mode not in ("stillborn", "dynamic"):
            raise ConfigError(f"unknown failure_mode {failure_mode!r}")
        if not 0.0 <= alive_fraction <= 1.0:
            raise ConfigError(
                f"alive_fraction must be in [0,1], got {alive_fraction}"
            )
        system = DaMulticastSystem(
            config=self.config(),
            seed=seed,
            p_success=self.p_succ,
            mode="static",
        )
        topics = self.topics()
        for topic, size in zip(topics, self.sizes):
            system.add_group(topic, size)

        publish_topic = topics[self.publish_level]
        scenario_rng = random.Random(derive_seed(seed, "scenario"))
        publisher_pid = scenario_rng.choice(system.group_pids(publish_topic))

        if failure_mode == "stillborn":
            failure_model = sample_stillborn(
                [p.pid for p in system.processes],
                alive_fraction,
                scenario_rng,
                protected=[publisher_pid],
            )
        else:
            failure_model = DynamicFailures(
                fail_probability=1.0 - alive_fraction,
                mode="per_attempt",
            )
        system.network.failure_model = failure_model
        system.finalize_static_membership()
        return ScenarioRun(
            scenario=self,
            system=system,
            topics=topics,
            publish_topic=publish_topic,
            publisher_pid=publisher_pid,
        )


@dataclass
class ScenarioRun:
    """A built scenario plus the handles experiments need."""

    scenario: PaperScenario
    system: DaMulticastSystem
    topics: list[Topic]
    publish_topic: Topic
    publisher_pid: int
    event: Event | None = field(default=None)

    def publish_and_run(self) -> Event:
        """Publish one event from the chosen publisher and run to idle."""
        publisher = self.system.process(self.publisher_pid)
        self.event = self.system.publish(
            self.publish_topic, publisher=publisher
        )
        self.system.run_until_idle()
        return self.event

    # ------------------------------------------------------------------
    # Measurements (the quantities of Figs. 8-11)
    # ------------------------------------------------------------------
    def intra_group_messages(self) -> dict[Topic, int]:
        """Fig. 8: events sent inside each group."""
        return {
            topic: self.system.stats.events_sent_in_group(topic)
            for topic in self.topics
        }

    def inter_group_messages(self) -> dict[tuple[Topic, Topic], int]:
        """Fig. 9: events sent from each group to its supergroup."""
        result = {}
        for lower, upper in zip(self.topics[1:], self.topics):
            result[(lower, upper)] = self.system.stats.events_sent_between(
                lower, upper
            )
        return result

    def delivered_fractions(self, alive_only: bool = False) -> dict[Topic, float]:
        """Figs. 10/11: fraction of group members that delivered.

        The paper's y-axis ("percentage of processes receiving a message")
        counts *all* group members — failed processes cannot receive, which
        is what keeps the curves at or below the diagonal. Pass
        ``alive_only=True`` for the coverage-among-survivors variant.
        """
        assert self.event is not None, "publish_and_run() first"
        return {
            topic: self.system.delivered_fraction(
                self.event, topic, alive_only=alive_only
            )
            for topic in self.topics
        }

    def all_received_flags(self) -> dict[Topic, bool]:
        """§VI-D reliability indicator per group, for this run."""
        assert self.event is not None, "publish_and_run() first"
        return {
            topic: self.system.all_received(self.event, topic)
            for topic in self.topics
        }
