"""Publication schedules for multi-event experiments.

The paper's figures use a single publication per run; the examples and the
throughput-oriented tests exercise streams of events: Poisson arrivals
(steady feed) and bursts (news spikes).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from itertools import groupby
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ConfigError
from repro.topics.topic import Topic
from repro.validation import check_non_negative, check_positive


@dataclass(frozen=True, slots=True)
class ScheduledPublication:
    """One planned publication: when, and on which topic."""

    time: float
    topic: Topic


def single_shot(topic: Topic, at: float = 0.0) -> list[ScheduledPublication]:
    """The §VII workload: exactly one event."""
    check_non_negative(at, "at")
    return [ScheduledPublication(at, topic)]


def burst_schedule(
    topic: Topic,
    *,
    count: int,
    start: float = 0.0,
    spacing: float = 0.0,
) -> list[ScheduledPublication]:
    """``count`` publications on one topic, ``spacing`` apart.

    ``start`` and ``spacing`` must be finite and non-negative: a NaN or
    infinite value would silently produce an unsorted (or unrunnable)
    schedule, and a negative ``start`` would schedule in the engine's past.
    """
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    check_non_negative(spacing, "spacing")
    check_non_negative(start, "start")
    return [
        ScheduledPublication(start + index * spacing, topic)
        for index in range(count)
    ]


def replay_on(
    system,
    publications: Sequence[ScheduledPublication],
    *,
    publishers: Mapping[Topic, Any] | None = None,
) -> list:
    """Schedule each publication on the system's engine at its time.

    Works with any system exposing ``engine`` and ``publish(topic)`` (the
    daMulticast system or a baseline). Returns a list that fills with the
    published :class:`~repro.core.events.Event` objects as the simulation
    executes them — inspect it *after* running the engine.

    ``publishers`` optionally pins the publishing process per topic (the
    scenario-spec runner uses this to publish from a pre-chosen,
    failure-protected process); topics absent from the mapping fall back
    to the system's default alive-publisher draw.
    """
    published: list = []

    def _publisher(topic: Topic):
        chosen = publishers.get(topic) if publishers is not None else None
        return lambda: published.append(
            system.publish(topic, publisher=chosen)
        )

    # Consecutive same-time publications (e.g. a zero-spacing burst) share
    # one engine entry instead of one closure-per-event in the heap.
    for time, group in groupby(publications, key=lambda p: p.time):
        thunks = [_publisher(p.topic) for p in group]
        if len(thunks) == 1:
            system.engine.schedule_at(time, thunks[0])
        else:
            system.engine.schedule_batch_at(time, thunks)
    return published


class PoissonSchedule:
    """Poisson arrivals at ``rate`` events/time-unit over ``[0, horizon]``,
    topics drawn uniformly (or per explicit weights)."""

    def __init__(
        self,
        topics: Sequence[Topic],
        *,
        rate: float,
        horizon: float,
        weights: Sequence[float] | None = None,
    ):
        if not topics:
            raise ConfigError("need at least one topic")
        # A NaN rate/horizon passes naive `<= 0` checks and then loops
        # forever (expovariate(nan) never crosses the horizon); an infinite
        # rate yields zero-length intervals and an unbounded schedule.
        check_positive(rate, "rate")
        check_positive(horizon, "horizon")
        if weights is not None:
            if len(weights) != len(topics):
                raise ConfigError("weights must match topics")
            for weight in weights:
                if not math.isfinite(weight) or weight < 0:
                    raise ConfigError(
                        f"weights must be finite and >= 0, got {weight!r}"
                    )
            if sum(weights) <= 0:
                raise ConfigError("weights must not all be zero")
        self.topics = list(topics)
        self.rate = rate
        self.horizon = horizon
        self.weights = list(weights) if weights is not None else None

    def generate(self, rng: random.Random) -> list[ScheduledPublication]:
        """Draw one schedule realization."""
        schedule: list[ScheduledPublication] = []
        now = 0.0
        while True:
            now += rng.expovariate(self.rate)
            if now > self.horizon:
                break
            topic = (
                rng.choices(self.topics, weights=self.weights, k=1)[0]
                if self.weights
                else rng.choice(self.topics)
            )
            schedule.append(ScheduledPublication(now, topic))
        return schedule

    def __iter__(self) -> Iterator[Topic]:
        return iter(self.topics)

    def __repr__(self) -> str:
        return (
            f"PoissonSchedule({len(self.topics)} topics, rate={self.rate}, "
            f"horizon={self.horizon})"
        )
