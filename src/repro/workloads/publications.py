"""Publication schedules for multi-event experiments.

The paper's figures use a single publication per run; the examples and the
throughput-oriented tests exercise streams of events: Poisson arrivals
(steady feed) and bursts (news spikes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import groupby
from typing import Iterator, Sequence

from repro.errors import ConfigError
from repro.topics.topic import Topic


@dataclass(frozen=True, slots=True)
class ScheduledPublication:
    """One planned publication: when, and on which topic."""

    time: float
    topic: Topic


def single_shot(topic: Topic, at: float = 0.0) -> list[ScheduledPublication]:
    """The §VII workload: exactly one event."""
    return [ScheduledPublication(at, topic)]


def burst_schedule(
    topic: Topic,
    *,
    count: int,
    start: float = 0.0,
    spacing: float = 0.0,
) -> list[ScheduledPublication]:
    """``count`` publications on one topic, ``spacing`` apart."""
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    if spacing < 0:
        raise ConfigError(f"spacing must be >= 0, got {spacing}")
    return [
        ScheduledPublication(start + index * spacing, topic)
        for index in range(count)
    ]


def replay_on(system, publications: Sequence[ScheduledPublication]) -> list:
    """Schedule each publication on the system's engine at its time.

    Works with any system exposing ``engine`` and ``publish(topic)`` (the
    daMulticast system or a baseline). Returns a list that fills with the
    published :class:`~repro.core.events.Event` objects as the simulation
    executes them — inspect it *after* running the engine.
    """
    published: list = []

    def _publisher(topic: Topic):
        return lambda: published.append(system.publish(topic))

    # Consecutive same-time publications (e.g. a zero-spacing burst) share
    # one engine entry instead of one closure-per-event in the heap.
    for time, group in groupby(publications, key=lambda p: p.time):
        thunks = [_publisher(p.topic) for p in group]
        if len(thunks) == 1:
            system.engine.schedule_at(time, thunks[0])
        else:
            system.engine.schedule_batch_at(time, thunks)
    return published


class PoissonSchedule:
    """Poisson arrivals at ``rate`` events/time-unit over ``[0, horizon]``,
    topics drawn uniformly (or per explicit weights)."""

    def __init__(
        self,
        topics: Sequence[Topic],
        *,
        rate: float,
        horizon: float,
        weights: Sequence[float] | None = None,
    ):
        if not topics:
            raise ConfigError("need at least one topic")
        if rate <= 0:
            raise ConfigError(f"rate must be > 0, got {rate}")
        if horizon <= 0:
            raise ConfigError(f"horizon must be > 0, got {horizon}")
        if weights is not None and len(weights) != len(topics):
            raise ConfigError("weights must match topics")
        self.topics = list(topics)
        self.rate = rate
        self.horizon = horizon
        self.weights = list(weights) if weights is not None else None

    def generate(self, rng: random.Random) -> list[ScheduledPublication]:
        """Draw one schedule realization."""
        schedule: list[ScheduledPublication] = []
        now = 0.0
        while True:
            now += rng.expovariate(self.rate)
            if now > self.horizon:
                break
            topic = (
                rng.choices(self.topics, weights=self.weights, k=1)[0]
                if self.weights
                else rng.choice(self.topics)
            )
            schedule.append(ScheduledPublication(now, topic))
        return schedule

    def __iter__(self) -> Iterator[Topic]:
        return iter(self.topics)

    def __repr__(self) -> str:
        return (
            f"PoissonSchedule({len(self.topics)} topics, rate={self.rate}, "
            f"horizon={self.horizon})"
        )
