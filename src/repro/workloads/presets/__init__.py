"""Bundled scenario presets: named, ready-to-run :mod:`repro.workloads.spec`
specs shipped as JSON files next to this module.

Each preset is one point in the scenario space the spec subsystem opens.
Static-mode presets cover the §VII paper workload, a Zipf-skewed feed, a
news burst, heavy churn, a healing partition, and a baseline counterpart
of the paper workload; dynamic-mode presets exercise the full protocol —
a staggered bootstrap wave (``bootstrap-wave``), a crash/heal campaign
(``churn-recover``), and the adversarial inter-group link attack
(``super-link-attack``). Run one with::

    python -m repro scenario run paper-vii --jobs 2

or from code::

    from repro.workloads.presets import load_preset
    from repro.workloads.spec import run_spec
    metrics = run_spec(load_preset("paper-vii"), seed=0)
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ConfigError

PRESET_DIR = pathlib.Path(__file__).parent


def preset_names() -> list[str]:
    """Names of every bundled preset, sorted."""
    return sorted(path.stem for path in PRESET_DIR.glob("*.json"))


def load_preset(name: str) -> dict:
    """Load one bundled preset spec by name (without the ``.json``)."""
    path = PRESET_DIR / f"{name}.json"
    if not path.is_file():
        raise ConfigError(
            f"unknown preset {name!r}; available: {', '.join(preset_names())}"
        )
    return json.loads(path.read_text())
