"""Subscription populations over a topic hierarchy.

The figure experiments use fixed per-level counts (§VII), but the baseline
comparisons and the examples need richer populations: uniform spread over
all topics, or Zipf-like popularity where a few topics attract most
subscribers (the typical newsgroup/feed shape the paper's introduction
motivates).
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.errors import ConfigError
from repro.topics.hierarchy import TopicHierarchy
from repro.topics.topic import Topic
from repro.validation import check_non_negative


def per_level_counts(
    topics: Sequence[Topic], counts: Sequence[int]
) -> dict[Topic, int]:
    """Fixed subscriber counts per topic (the §VII shape).

    >>> from repro.topics.builders import chain
    >>> per_level_counts(chain(2), [10, 100, 1000])  # doctest: +ELLIPSIS
    {...}
    """
    if len(topics) != len(counts):
        raise ConfigError(
            f"{len(topics)} topics but {len(counts)} counts; must match"
        )
    for count in counts:
        if count < 0:
            raise ConfigError(f"counts must be >= 0, got {count}")
    return dict(zip(topics, counts))


def uniform_subscriptions(
    hierarchy: TopicHierarchy,
    n_processes: int,
    rng: random.Random,
    *,
    include_root: bool = True,
) -> dict[Topic, int]:
    """Spread ``n_processes`` uniformly over the hierarchy's topics."""
    if n_processes < 0:
        raise ConfigError(f"n_processes must be >= 0, got {n_processes}")
    topics = [
        t for t in hierarchy.topics if include_root or not t.is_root
    ]
    if not topics:
        raise ConfigError("hierarchy has no eligible topics")
    counts = {topic: 0 for topic in topics}
    for _ in range(n_processes):
        counts[rng.choice(topics)] += 1
    return counts


def zipf_subscriptions(
    hierarchy: TopicHierarchy,
    n_processes: int,
    rng: random.Random,
    *,
    exponent: float = 1.0,
    include_root: bool = False,
) -> dict[Topic, int]:
    """Zipf-popularity subscriptions: rank-``k`` topic gets weight
    ``k^-exponent``.

    Topic rank follows the sorted topic order (deterministic), so the same
    hierarchy and seed give the same population. The root is excluded by
    default — in practice few applications subscribe to "everything".
    """
    if n_processes < 0:
        raise ConfigError(f"n_processes must be >= 0, got {n_processes}")
    check_non_negative(exponent, "exponent")
    topics = [
        t for t in hierarchy.topics if include_root or not t.is_root
    ]
    if not topics:
        raise ConfigError("hierarchy has no eligible topics")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(topics))]
    counts = {topic: 0 for topic in topics}
    for chosen in rng.choices(topics, weights=weights, k=n_processes):
        counts[chosen] += 1
    return counts


def populate_system(system, counts: Mapping[Topic, int]) -> None:
    """Instantiate ``counts[topic]`` processes per topic on any system
    exposing ``add_group`` (DaMulticastSystem or a baseline)."""
    for topic, count in sorted(counts.items()):
        if count > 0:
            system.add_group(topic, count)
