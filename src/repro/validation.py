"""Shared numeric-parameter validators (the NaN/inf hardening convention).

Every float parameter that reaches the simulator must be rejected *at
construction time* when it is NaN or infinite: a NaN slips through every
ordered comparison (``nan < 0`` is False), so naive range checks accept it
and the corruption surfaces much later — as an unsorted engine heap, a
meaningless binary-searched timeline, or a randomized fault stream. The
checks below were originally copy-pasted across nine modules; they live
here once so the determinism lint (``repro lint``, rule DET005) can
recognize a validated parameter structurally.

All helpers raise ``error`` (default :class:`~repro.errors.ConfigError`)
with the exact message style the call sites always used, and return
``float(value)`` for callers that want the conversion — callers that
historically stored the raw value keep doing so and simply ignore the
return value.
"""

from __future__ import annotations

from math import isfinite, isnan
from typing import Iterable, Type

from repro.errors import ConfigError


def check_number(value, what: str, *, error: Type[Exception] = ConfigError) -> float:
    """``value`` must be an ``int`` or ``float`` (``bool`` excluded)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise error(f"{what} must be a number, got {value!r}")
    return float(value)


def check_finite(value, what: str, *, error: Type[Exception] = ConfigError) -> float:
    """``value`` must be a finite number (rejects NaN and ±inf)."""
    check_number(value, what, error=error)
    if not isfinite(value):
        raise error(f"{what} must be finite, got {value!r}")
    return float(value)


def check_non_negative(
    value, what: str, *, error: Type[Exception] = ConfigError
) -> float:
    """``value`` must be finite and ``>= 0``."""
    check_finite(value, what, error=error)
    if value < 0:
        raise error(f"{what} must be >= 0, got {value}")
    return float(value)


def check_positive(value, what: str, *, error: Type[Exception] = ConfigError) -> float:
    """``value`` must be finite and ``> 0``."""
    check_finite(value, what, error=error)
    if value <= 0:
        raise error(f"{what} must be > 0, got {value}")
    return float(value)


def check_probability(
    value, what: str, *, error: Type[Exception] = ConfigError
) -> float:
    """``value`` must be a finite number in ``[0, 1]``."""
    check_finite(value, what, error=error)
    if not 0.0 <= value <= 1.0:
        raise error(f"{what} must be in [0, 1], got {value}")
    return float(value)


def check_window(
    value, what: str = "window", *, error: Type[Exception] = ConfigError
) -> float:
    """``value`` must be a finite number ``> 0`` (one combined message).

    The sliding-window metrics raise :class:`~repro.errors.MetricsError`
    here via ``error=``; the single-message style is historical and kept
    bit-identical.
    """
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not isfinite(value)
        or value <= 0
    ):
        raise error(f"{what} must be a finite number > 0, got {value!r}")
    return float(value)


def check_finite_grid(
    grid: Iterable[float], *, error: Type[Exception] = ConfigError
) -> None:
    """Every sweep-grid point must be finite (NaN reported by name).

    Keeps the experiment runner's historical two-message style: NaN and
    ±inf corrupt a sweep differently (NaN also poisons seed-name
    formatting), so they are reported distinctly.
    """
    for point in grid:
        if isnan(point):
            raise error("grid contains NaN")
        if not isfinite(point):
            raise error(f"grid contains non-finite point {point!r}")
