"""Topic model: hierarchical topic names and topic hierarchies.

The paper organizes events in a topic hierarchy (e.g. ``.dsn04.reviewers``)
and exploits the *inclusion* relation between topics: ``Ta`` includes ``Tb``
when ``Ta`` is a (direct or indirect) supertopic of ``Tb``. This package
provides:

* :class:`~repro.topics.topic.Topic` — an immutable dotted-path topic name
  with super/sub-topic navigation,
* :class:`~repro.topics.hierarchy.TopicHierarchy` — an explicit registry of
  the topics that exist in a system (a rooted tree),
* :class:`~repro.topics.hierarchy.TopicDag` — the multi-inheritance
  extension sketched in the paper's conclusion (a topic may have several
  direct supertopics),
* :mod:`~repro.topics.builders` — convenience constructors (chains, balanced
  trees, the paper's three-level scenario hierarchy, random hierarchies).
"""

from repro.topics.topic import ROOT, Topic
from repro.topics.hierarchy import TopicDag, TopicHierarchy
from repro.topics.builders import (
    balanced_tree,
    chain,
    from_names,
    paper_hierarchy,
    random_hierarchy,
)

__all__ = [
    "ROOT",
    "Topic",
    "TopicHierarchy",
    "TopicDag",
    "chain",
    "balanced_tree",
    "from_names",
    "paper_hierarchy",
    "random_hierarchy",
]
