"""Explicit topic hierarchies: the tree of topics known to a system.

A :class:`TopicHierarchy` is the set of topics that exist in a deployment.
The paper assumes a rooted tree where each topic except the root has exactly
one direct supertopic (§VIII notes multiple inheritance as an extension —
implemented here in :class:`TopicDag`).

Registering ``.a.b.c`` implicitly registers ``.a.b``, ``.a`` and the root so
the hierarchy is always connected; the *depth* ``t`` of the hierarchy is the
maximum topic depth (the paper's §VI assumes a chain T0..Tt of depth t).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import HierarchyError, UnknownTopic
from repro.topics.topic import ROOT, Topic


class TopicHierarchy:
    """A rooted tree of registered topics.

    >>> h = TopicHierarchy.from_topics([Topic.parse(".dsn04.reviewers")])
    >>> h.depth
    2
    >>> [t.name for t in h.chain_to_root(Topic.parse(".dsn04.reviewers"))]
    ['.dsn04.reviewers', '.dsn04', '.']
    """

    def __init__(self) -> None:
        self._children: dict[Topic, set[Topic]] = {ROOT: set()}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_topics(cls, topics: Iterable[Topic | str]) -> "TopicHierarchy":
        """Build a hierarchy containing ``topics`` and all their ancestors."""
        hierarchy = cls()
        for topic in topics:
            hierarchy.add(topic)
        return hierarchy

    def add(self, topic: Topic | str) -> Topic:
        """Register ``topic`` (and, implicitly, all its supertopics).

        Returns the registered :class:`Topic`. Adding an existing topic is a
        no-op, so callers need not deduplicate.
        """
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        node = resolved
        while not node.is_root:
            parent = node.super_topic
            assert parent is not None  # not root
            siblings = self._children.setdefault(parent, set())
            siblings.add(node)
            self._children.setdefault(node, set())
            node = parent
        return resolved

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, topic: Topic) -> bool:
        return topic in self._children

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator[Topic]:
        return iter(sorted(self._children))

    @property
    def topics(self) -> list[Topic]:
        """All registered topics, sorted (root first)."""
        return sorted(self._children)

    @property
    def depth(self) -> int:
        """The hierarchy depth ``t``: maximum topic depth (root = 0)."""
        return max(topic.depth for topic in self._children)

    def require(self, topic: Topic) -> Topic:
        """Return ``topic`` if registered, else raise :class:`UnknownTopic`."""
        if topic not in self._children:
            raise UnknownTopic(f"topic {topic.name} is not in the hierarchy")
        return topic

    def children(self, topic: Topic) -> list[Topic]:
        """Direct subtopics of ``topic``, sorted."""
        self.require(topic)
        return sorted(self._children[topic])

    def super_of(self, topic: Topic) -> Topic | None:
        """``super(topic)`` within the hierarchy (None for the root)."""
        self.require(topic)
        return topic.super_topic

    def subtree(self, topic: Topic) -> list[Topic]:
        """``topic`` and every registered topic it includes, sorted."""
        self.require(topic)
        return sorted(t for t in self._children if topic.includes(t))

    def leaves(self) -> list[Topic]:
        """Topics with no registered subtopic, sorted."""
        return sorted(t for t, kids in self._children.items() if not kids)

    def level(self, depth: int) -> list[Topic]:
        """All registered topics at exactly ``depth`` hops below the root."""
        return sorted(t for t in self._children if t.depth == depth)

    def chain_to_root(self, topic: Topic) -> list[Topic]:
        """``[topic, super(topic), ..., root]`` — the dissemination path."""
        self.require(topic)
        return list(topic.ancestors(include_self=True))

    def parents_of(self, topic: Topic) -> list[Topic]:
        """Direct supertopics (singleton list, or empty for the root).

        Provided so tree and DAG hierarchies expose the same interface.
        """
        self.require(topic)
        parent = topic.super_topic
        return [] if parent is None else [parent]

    def next_including_with(
        self, topic: Topic, predicate: Callable[[Topic], bool]
    ) -> Topic | None:
        """First strict supertopic of ``topic`` satisfying ``predicate``.

        This is the paper's "first topic, according to the topic hierarchy
        level, that induces Ti" used when no process is interested in the
        direct supertopic (§III-B): we walk up the chain and return the
        nearest supertopic accepted by ``predicate`` (e.g. "has interested
        processes"), or ``None`` when none qualifies.
        """
        self.require(topic)
        for ancestor in topic.ancestors(include_self=False):
            if predicate(ancestor):
                return ancestor
        return None

    def validate(self) -> None:
        """Check structural invariants; raise :class:`HierarchyError` if broken.

        The tree built through :meth:`add` is correct by construction; this
        is a guard for hierarchies assembled by external tooling.
        """
        if ROOT not in self._children:
            raise HierarchyError("hierarchy lost its root topic")
        for topic in self._children:
            if topic.is_root:
                continue
            parent = topic.super_topic
            if parent not in self._children:
                raise HierarchyError(f"{topic.name} has unregistered parent")
            if topic not in self._children[parent]:
                raise HierarchyError(f"{topic.name} missing from parent's children")

    def __repr__(self) -> str:
        return f"TopicHierarchy({len(self)} topics, depth={self.depth})"


class TopicDag:
    """Multi-inheritance topic graph (paper §VIII extension).

    The paper's concluding remarks note that multiple direct supertopics
    could be supported "by adding a supertopic table for each supertopic".
    A :class:`TopicDag` assigns each topic an explicit set of parents; the
    implicit dotted-path parent is always included, and extra parents may be
    declared with :meth:`link`. The graph must remain acyclic and rooted.
    """

    def __init__(self) -> None:
        self._parents: dict[Topic, set[Topic]] = {ROOT: set()}
        self._children: dict[Topic, set[Topic]] = {ROOT: set()}

    @classmethod
    def from_hierarchy(cls, hierarchy: TopicHierarchy) -> "TopicDag":
        """Lift a tree hierarchy into a DAG (each topic keeps its one parent)."""
        dag = cls()
        for topic in hierarchy.topics:
            dag.add(topic)
        return dag

    def add(self, topic: Topic | str) -> Topic:
        """Register ``topic`` with its implicit dotted-path ancestry."""
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        node = resolved
        while node not in self._parents:
            self._parents[node] = set()
            self._children.setdefault(node, set())
            parent = node.super_topic
            if parent is None:
                break
            self._parents[node].add(parent)
            self._children.setdefault(parent, set()).add(node)
            node = parent
        return resolved

    def link(self, topic: Topic, extra_parent: Topic) -> None:
        """Declare ``extra_parent`` as an additional direct supertopic.

        Raises :class:`HierarchyError` when the link would create a cycle or
        when either endpoint is unregistered.
        """
        if topic not in self._parents or extra_parent not in self._parents:
            raise UnknownTopic("both endpoints must be registered before linking")
        if topic == extra_parent or self.is_ancestor(topic, extra_parent):
            raise HierarchyError(
                f"linking {topic.name} under {extra_parent.name} creates a cycle"
            )
        self._parents[topic].add(extra_parent)
        self._children[extra_parent].add(topic)

    def parents_of(self, topic: Topic) -> list[Topic]:
        """All direct supertopics of ``topic`` (implicit + linked), sorted."""
        if topic not in self._parents:
            raise UnknownTopic(f"topic {topic.name} is not in the DAG")
        return sorted(self._parents[topic])

    def children(self, topic: Topic) -> list[Topic]:
        """All direct subtopics of ``topic``, sorted."""
        if topic not in self._children:
            raise UnknownTopic(f"topic {topic.name} is not in the DAG")
        return sorted(self._children[topic])

    def is_ancestor(self, maybe_ancestor: Topic, topic: Topic) -> bool:
        """Whether ``maybe_ancestor`` is strictly reachable upward from ``topic``."""
        seen: set[Topic] = set()
        frontier = list(self._parents.get(topic, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._parents.get(node, ()))
        return maybe_ancestor in seen

    def ancestors(self, topic: Topic) -> list[Topic]:
        """Every topic that includes ``topic`` through any parent chain."""
        if topic not in self._parents:
            raise UnknownTopic(f"topic {topic.name} is not in the DAG")
        seen: set[Topic] = set()
        frontier = list(self._parents[topic])
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._parents.get(node, ()))
        return sorted(seen)

    @property
    def topics(self) -> list[Topic]:
        """All registered topics, sorted (root first)."""
        return sorted(self._parents)

    def __contains__(self, topic: Topic) -> bool:
        return topic in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def __repr__(self) -> str:
        return f"TopicDag({len(self)} topics)"
