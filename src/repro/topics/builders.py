"""Convenience constructors for topic hierarchies.

These cover the shapes used throughout the evaluation: the paper's
three-level chain (§VII), deeper chains for the complexity analysis (§VI
assumes a chain ``T0..Tt``), balanced trees for the baseline comparisons,
and seeded random hierarchies for property-based tests.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.topics.hierarchy import TopicHierarchy
from repro.topics.topic import ROOT, Topic


def chain(depth: int, prefix: str = "level") -> list[Topic]:
    """A chain ``T0 (root), T1, ..., T<depth>`` as used by the analysis (§VI).

    Returns the topics ordered root-first. ``depth=0`` yields just the root.

    >>> [t.name for t in chain(2)]
    ['.', '.level1', '.level1.level2']
    """
    if depth < 0:
        raise ConfigError(f"chain depth must be >= 0, got {depth}")
    topics = [ROOT]
    for level in range(1, depth + 1):
        topics.append(topics[-1].child(f"{prefix}{level}"))
    return topics


def paper_hierarchy() -> tuple[TopicHierarchy, list[Topic]]:
    """The §VII simulation hierarchy: ``t = 3`` levels T0 (root), T1, T2.

    Returns ``(hierarchy, [T0, T1, T2])``. The paper publishes on T2 (the
    bottom-most topic) and measures dissemination up to the root group T0.
    """
    topics = chain(2, prefix="t")  # [., .t1, .t1.t2] -> T0, T1, T2
    return TopicHierarchy.from_topics(topics), topics


def from_names(names: Iterable[str]) -> TopicHierarchy:
    """Build a hierarchy from dotted names (ancestors added implicitly)."""
    return TopicHierarchy.from_topics(Topic.parse(name) for name in names)


def balanced_tree(arity: int, depth: int) -> TopicHierarchy:
    """A complete ``arity``-ary topic tree of the given ``depth``.

    Useful for exercising hierarchies where a supertopic has several
    subtopics (the paper's figures only need a chain, but the protocol and
    baseline (b) are sensitive to branching).
    """
    if arity < 1:
        raise ConfigError(f"arity must be >= 1, got {arity}")
    if depth < 0:
        raise ConfigError(f"depth must be >= 0, got {depth}")
    hierarchy = TopicHierarchy()
    frontier: list[Topic] = [ROOT]
    for _ in range(depth):
        next_frontier: list[Topic] = []
        for node in frontier:
            for index in range(arity):
                child = node.child(f"s{index}")
                hierarchy.add(child)
                next_frontier.append(child)
        frontier = next_frontier
    return hierarchy


def random_hierarchy(
    rng: random.Random,
    n_topics: int,
    max_children: int = 4,
) -> TopicHierarchy:
    """A random rooted hierarchy with ``n_topics`` non-root topics.

    Each new topic attaches to a uniformly chosen existing topic that still
    has fewer than ``max_children`` children, producing varied shapes for
    property-based tests while keeping the tree connected by construction.
    """
    if n_topics < 0:
        raise ConfigError(f"n_topics must be >= 0, got {n_topics}")
    if max_children < 1:
        raise ConfigError(f"max_children must be >= 1, got {max_children}")
    hierarchy = TopicHierarchy()
    attachable: list[Topic] = [ROOT]
    child_counts: dict[Topic, int] = {ROOT: 0}
    for index in range(n_topics):
        parent = rng.choice(attachable)
        child = parent.child(f"n{index}")
        hierarchy.add(child)
        child_counts[child] = 0
        child_counts[parent] += 1
        if child_counts[parent] >= max_children:
            attachable.remove(parent)
        attachable.append(child)
    return hierarchy


def group_sizes_for_chain(
    topics: Sequence[Topic], sizes: Sequence[int]
) -> dict[Topic, int]:
    """Zip a chain of topics with per-level group sizes.

    The §VII scenario uses sizes ``[10, 100, 1000]`` for ``[T0, T1, T2]``.
    """
    if len(topics) != len(sizes):
        raise ConfigError(
            f"got {len(topics)} topics but {len(sizes)} sizes; they must match"
        )
    for size in sizes:
        if size < 1:
            raise ConfigError(f"every group must have >= 1 process, got {size}")
    return dict(zip(topics, sizes))
