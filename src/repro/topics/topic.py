"""Immutable topic names with super/sub-topic navigation.

A topic is a dotted path rooted at ``.`` (the root topic): ``.dsn04`` is the
direct supertopic of ``.dsn04.reviewers``. Following the paper (§III-A):

* ``super(Ti)`` is the direct supertopic; only the root has none.
* ``Ta`` *includes* ``Tb`` when ``Ta`` is a supertopic (direct or not) of
  ``Tb``. :meth:`Topic.includes` is the reflexive closure (a topic includes
  itself) because an event of topic ``Ti`` *is* an event of topic ``Ti``;
  use :meth:`Topic.is_strict_supertopic_of` for the strict relation.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterator, Sequence

from repro.errors import InvalidTopicName

_SEGMENT_RE = re.compile(r"^[A-Za-z0-9_\-]+$")


@total_ordering
class Topic:
    """An immutable, hashable topic name.

    Instances are value objects: two topics with the same path are equal and
    interchangeable. Construction validates every path segment against
    ``[A-Za-z0-9_-]+``.

    >>> reviewers = Topic.parse(".dsn04.reviewers")
    >>> reviewers.super_topic
    Topic('.dsn04')
    >>> Topic.parse(".dsn04").includes(reviewers)
    True
    """

    __slots__ = ("_segments", "_name", "_hash")

    def __init__(self, segments: Sequence[str] = ()):
        checked = tuple(segments)
        for segment in checked:
            if not _SEGMENT_RE.match(segment):
                raise InvalidTopicName(
                    f"invalid topic segment {segment!r}: segments must match "
                    f"[A-Za-z0-9_-]+"
                )
        self._segments = checked
        self._name = "." + ".".join(checked) if checked else "."
        # repro-lint: allow[DET003]: cached tuple hash for dict/set keying only; it never crosses a process or digest boundary
        self._hash = hash(checked)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, name: str) -> "Topic":
        """Parse a dotted topic name such as ``.dsn04.reviewers``.

        The leading dot is optional; ``"."`` and ``""`` both denote the
        root topic.
        """
        if not isinstance(name, str):
            raise InvalidTopicName(f"topic name must be a string, got {type(name)!r}")
        stripped = name.strip()
        if stripped.startswith("."):
            stripped = stripped[1:]
        if not stripped:
            return ROOT
        if stripped.endswith(".") or ".." in stripped:
            raise InvalidTopicName(f"malformed topic name {name!r}")
        return cls(stripped.split("."))

    def child(self, segment: str) -> "Topic":
        """Return the direct subtopic obtained by appending ``segment``."""
        return Topic(self._segments + (segment,))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The canonical dotted name (always starts with ``.``)."""
        return self._name

    @property
    def segments(self) -> tuple[str, ...]:
        """The path segments, root first (empty tuple for the root)."""
        return self._segments

    @property
    def depth(self) -> int:
        """Distance from the root topic (root has depth 0)."""
        return len(self._segments)

    @property
    def is_root(self) -> bool:
        """Whether this is the root topic ``.``."""
        return not self._segments

    @property
    def leaf_segment(self) -> str:
        """The last path segment (raises on the root topic)."""
        if self.is_root:
            raise InvalidTopicName("the root topic has no leaf segment")
        return self._segments[-1]

    # ------------------------------------------------------------------
    # Hierarchy navigation
    # ------------------------------------------------------------------
    @property
    def super_topic(self) -> "Topic | None":
        """The direct supertopic ``super(Ti)``, or ``None`` for the root."""
        if self.is_root:
            return None
        return Topic(self._segments[:-1])

    def ancestors(self, include_self: bool = False) -> Iterator["Topic"]:
        """Yield supertopics from the direct one up to (and including) root.

        With ``include_self=True`` the topic itself is yielded first, which
        matches the paper's reading that an event of ``Ti`` is relevant to
        every topic that includes ``Ti`` — including ``Ti`` itself.
        """
        if include_self:
            yield self
        topic = self.super_topic
        while topic is not None:
            yield topic
            topic = topic.super_topic

    def includes(self, other: "Topic") -> bool:
        """Whether ``self`` includes ``other`` (reflexive + transitive).

        ``Ta.includes(Tb)`` is true when ``Ta`` is ``Tb`` or a supertopic of
        ``Tb``: every event of ``Tb`` is also an event of ``Ta``.
        """
        if self.depth > other.depth:
            return False
        return other._segments[: self.depth] == self._segments

    def is_strict_supertopic_of(self, other: "Topic") -> bool:
        """Whether ``self`` is a proper (non-equal) supertopic of ``other``."""
        return self != other and self.includes(other)

    def is_subtopic_of(self, other: "Topic") -> bool:
        """Whether ``other`` includes ``self`` (reflexive)."""
        return other.includes(self)

    def common_ancestor(self, other: "Topic") -> "Topic":
        """The deepest topic including both ``self`` and ``other``."""
        prefix: list[str] = []
        for mine, theirs in zip(self._segments, other._segments):
            if mine != theirs:
                break
            prefix.append(mine)
        return Topic(prefix)

    def distance_to_root(self) -> int:
        """Number of inter-group hops from this topic's group to the root's."""
        return self.depth

    def relative_depth(self, ancestor: "Topic") -> int:
        """Number of hops up from ``self`` to ``ancestor``.

        Raises :class:`InvalidTopicName` when ``ancestor`` does not include
        ``self``.
        """
        if not ancestor.includes(self):
            raise InvalidTopicName(
                f"{ancestor.name} does not include {self.name}; no relative depth"
            )
        return self.depth - ancestor.depth

    # ------------------------------------------------------------------
    # Value-object protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topic):
            return NotImplemented
        return self._segments == other._segments

    def __lt__(self, other: "Topic") -> bool:
        if not isinstance(other, Topic):
            return NotImplemented
        return self._segments < other._segments

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Topic({self._name!r})"

    def __str__(self) -> str:
        return self._name


#: The root topic ``.``; the group of processes interested in it is the
#: paper's "root group".
ROOT = Topic(())
