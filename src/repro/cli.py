"""Command-line interface: regenerate any figure or table of the paper.

Usage (installed as ``damulticast``, or ``python -m repro``)::

    damulticast fig8                 # Fig. 8 series
    damulticast fig10 --runs 10     # more repetitions
    damulticast fig11 --grid 0 0.25 0.5 0.75 1.0
    damulticast compare             # §VI-E measured comparison
    damulticast analysis            # §VI-E closed-form tables
    damulticast tuning --pit 0.9995 # Appendix feasibility/z-bounds
    damulticast ablate-g / ablate-c # tuning-knob sweeps

    damulticast serve --topics .conf:5 .conf.dsn:10 \\
        --publish 20 --verify-replay     # live pub/sub service mode

    damulticast scenario list                        # bundled presets
    damulticast scenario run paper-vii --executor pool:2    # run a preset
    damulticast scenario run SPEC.json --runs 5      # run a spec file
    damulticast scenario run churn-recover --out RUN.json   # dynamic preset
    damulticast scenario sweep SPEC.json \\
        --field failures.alive_fraction --values 0.5 0.75 1.0 \\
        --out SWEEP.json
    damulticast scenario render SWEEP.json --format csv

    # graceful degradation under link faults (repro.net.faults):
    damulticast scenario run lossy-wan       # burst loss on inter links
    damulticast scenario sweep loss-sweep \\
        --field faults.loss.p --values 0 0.05 0.1 0.2 \\
        --out LOSS.json                      # reliability-vs-loss curve
    damulticast scenario sweep loss-sweep \\
        --field faults.loss.p --values 0 0.05 0.1 0.2 \\
        --set protocol=broadcast             # same grid, baseline

Every command prints the same rows/series the paper reports, as an
aligned ASCII table. Scenario specs are declarative JSON documents (see
``repro.workloads.spec``) covering both static-mode (§VII simulator) and
dynamic-mode (full protocol: bootstrap, maintenance, failure campaigns,
latency models) runs; ``scenario`` output is bit-identical for any
execution backend (``--executor serial | pool:N | warm:N``; ``--jobs N``
stays as an alias for ``pool:N``). ``scenario run/sweep --out`` saves a
JSON payload (written atomically) that ``scenario render`` turns into
figure-style tables, CSV or JSON, and ``--cache DIR`` keeps a
content-addressed per-cell result store: a re-run of a finished sweep
executes zero cells, an interrupted sweep resumes where it stopped.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Mapping, Sequence

from repro.analysis.comparison import ChainScenario, comparison_table
from repro.errors import ConfigError
from repro.analysis.tuning import (
    match_broadcast,
    match_hierarchical,
    match_multicast,
)
from repro.experiments.ablations import (
    sweep_fanout_constant,
    sweep_link_redundancy,
)
from repro.experiments.comparisons import measured_comparison
from repro.experiments.figures import (
    DEFAULT_GRID,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
)
from repro.experiments.artifacts import (
    ArtifactStore,
    CachingExecutor,
    write_json_atomic,
)
from repro.experiments.executor import Executor, resolve_executor
from repro.experiments.runner import aggregate_runs
from repro.metrics.report import (
    SCENARIO_RUN_SCHEMA,
    SCENARIO_SWEEP_SCHEMA,
    Table,
    table_from_scenario_payload,
)
from repro.workloads.scenarios import PaperScenario
from repro.workloads.spec import (
    load_spec,
    metrics_digest,
    run_scenario,
    spec_digest,
    spec_with,
    sweep_scenario,
)


def _make_exec_parent(top_level: bool = False) -> argparse.ArgumentParser:
    """The shared `--executor`/`--jobs`/`--progress` option group.

    Registered once and attached to every sweeping subcommand via
    ``parents=`` (no per-subcommand re-wiring). The top-level parser
    holds the real defaults; the subcommand parent uses SUPPRESS so a
    subcommand-position flag overrides the top-level one instead of
    resetting it — both `repro --executor pool:4 fig10` and `repro fig10
    --executor pool:4` work, with the subcommand position winning.
    """

    def default(value):
        return value if top_level else argparse.SUPPRESS

    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument(
        "--executor",
        default=default(None),
        metavar="SPEC",
        help=(
            "execution backend: 'serial' (default), 'pool[:N]' (fresh "
            "worker pool), 'warm[:N]' (persistent workers); results are "
            "bit-identical for every backend and worker count"
        ),
    )
    group.add_argument(
        "--jobs",
        type=int,
        default=default(None),
        help="alias for --executor pool:N (N=1 means serial)",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        default=default(False),
        help="print per-point sweep progress to stderr",
    )
    return parent


def _executor_spec_from(args: argparse.Namespace) -> str | None:
    """Combine `--executor` and its `--jobs` alias into one spec string."""
    executor = getattr(args, "executor", None)
    jobs = getattr(args, "jobs", None)
    if executor is not None and jobs is not None:
        raise ConfigError("pass --executor SPEC or --jobs N, not both")
    if jobs is not None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        return "serial" if jobs == 1 else f"pool:{jobs}"
    return executor


def _resolved_executor(args: argparse.Namespace) -> Executor:
    return resolve_executor(_executor_spec_from(args))


def _add_common_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runs", type=int, default=5, help="repetitions per grid point"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed for the sweep"
    )
    parser.add_argument(
        "--grid",
        type=float,
        nargs="+",
        default=list(DEFAULT_GRID),
        help="alive-fraction grid points",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[10, 100, 1000],
        help="group sizes from the root down (default: paper's 10 100 1000)",
    )


def _scenario_from(args: argparse.Namespace) -> PaperScenario:
    return PaperScenario(sizes=tuple(args.sizes))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="damulticast",
        description=(
            "Reproduction of 'Data-Aware Multicast' (DSN 2004): regenerate "
            "the paper's figures and tables."
        ),
        parents=[_make_exec_parent(top_level=True)],
    )
    sub = parser.add_subparsers(dest="command", required=True)
    exec_parent = _make_exec_parent()

    for name, help_text in [
        ("fig8", "events sent within each group vs alive fraction"),
        ("fig9", "events sent between groups vs alive fraction"),
        ("fig10", "reliability under stillborn failures"),
        ("fig11", "reliability under dynamic failures"),
    ]:
        figure = sub.add_parser(name, help=help_text, parents=[exec_parent])
        _add_common_experiment_args(figure)

    compare = sub.add_parser(
        "compare",
        help="measured §VI-E comparison of all four algorithms",
        parents=[exec_parent],
    )
    compare.add_argument("--runs", type=int, default=3)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 100, 1000]
    )

    analysis = sub.add_parser(
        "analysis", help="closed-form §VI-E tables (no simulation)"
    )
    analysis.add_argument(
        "--sizes", type=int, nargs="+", default=[1000, 100, 10],
        help="group sizes from the publication level up",
    )
    analysis.add_argument("--p-succ", type=float, default=1.0)

    tuning = sub.add_parser(
        "tuning", help="Appendix equivalence windows and z-bounds"
    )
    tuning.add_argument("--pit", type=float, default=0.9995)
    tuning.add_argument("--c", type=float, nargs="+", default=[1.0, 2.0, 5.0])
    tuning.add_argument("--t", type=int, default=3)
    tuning.add_argument("--n", type=float, default=1110.0)
    tuning.add_argument("--s-t", type=float, default=1000.0)
    tuning.add_argument("--clusters", type=int, default=10)

    ablate_g = sub.add_parser(
        "ablate-g",
        help="reliability/messages vs link redundancy g",
        parents=[exec_parent],
    )
    ablate_g.add_argument("--runs", type=int, default=5)
    ablate_g.add_argument("--alive", type=float, default=0.7)
    ablate_g.add_argument(
        "--values", type=float, nargs="+", default=[1, 2, 5, 10, 20]
    )

    ablate_c = sub.add_parser(
        "ablate-c",
        help="reliability/messages vs gossip constant c",
        parents=[exec_parent],
    )
    ablate_c.add_argument("--runs", type=int, default=5)
    ablate_c.add_argument("--alive", type=float, default=1.0)
    ablate_c.add_argument(
        "--values", type=float, nargs="+", default=[0, 1, 2, 3, 5, 8]
    )

    scale_s = sub.add_parser(
        "scale-s",
        help="message growth vs bottom group size (O(S log S))",
        parents=[exec_parent],
    )
    scale_s.add_argument("--runs", type=int, default=3)
    scale_s.add_argument(
        "--values", type=int, nargs="+", default=[50, 100, 200, 400, 800]
    )

    scale_t = sub.add_parser(
        "scale-t",
        help="message growth vs hierarchy depth (linear in t)",
        parents=[exec_parent],
    )
    scale_t.add_argument("--runs", type=int, default=3)
    scale_t.add_argument(
        "--values", type=int, nargs="+", default=[1, 2, 3, 4, 5]
    )
    scale_t.add_argument("--level-size", type=int, default=100)

    stream = sub.add_parser(
        "stream",
        help="steady-state Poisson stream: cost/delivery/parasites",
        parents=[exec_parent],
    )
    stream.add_argument("--runs", type=int, default=3)
    stream.add_argument(
        "--rates", type=float, nargs="+", default=[0.05, 0.2, 0.5]
    )

    scenario = sub.add_parser(
        "scenario",
        help="declarative scenario specs: run/sweep a SPEC.json or preset",
    )
    scenario_sub = scenario.add_subparsers(
        dest="scenario_command", required=True
    )

    scenario_run = scenario_sub.add_parser(
        "run",
        help="run one spec (JSON file path or bundled preset name)",
        parents=[exec_parent],
    )
    scenario_run.add_argument(
        "spec", help="path to a SPEC.json, or a bundled preset name"
    )
    scenario_run.add_argument(
        "--runs", type=int, default=3, help="repetitions with derived seeds"
    )
    scenario_run.add_argument(
        "--seed", type=int, default=0, help="master seed for the repetitions"
    )
    scenario_run.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed per-cell result store: finished cells are "
            "loaded instead of recomputed, results are persisted per cell "
            "(atomically) so interrupted runs resume"
        ),
    )
    scenario_run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="PATH=VALUE",
        help=(
            "override a spec field before running, e.g. "
            "--set failures.alive_fraction=0.5 or --set protocol=broadcast "
            "(VALUE is parsed as JSON, falling back to a bare string)"
        ),
    )
    scenario_run.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help=(
            "also write the per-run samples and aggregates as a JSON "
            "payload, renderable later with 'scenario render'"
        ),
    )

    scenario_sweep = scenario_sub.add_parser(
        "sweep",
        help="sweep one spec field over a list of values",
        parents=[exec_parent],
    )
    scenario_sweep.add_argument(
        "spec", help="path to a SPEC.json, or a bundled preset name"
    )
    scenario_sweep.add_argument(
        "--field",
        required=True,
        help="dotted spec path to sweep, e.g. failures.alive_fraction",
    )
    scenario_sweep.add_argument(
        "--values",
        required=True,
        nargs="+",
        help="values for the swept field (each parsed as JSON, then string)",
    )
    scenario_sweep.add_argument("--runs", type=int, default=3)
    scenario_sweep.add_argument("--seed", type=int, default=0)
    scenario_sweep.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="per-cell result store (see 'scenario run --cache')",
    )
    scenario_sweep.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="PATH=VALUE",
        help="override a spec field before sweeping (see 'scenario run')",
    )
    scenario_sweep.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help=(
            "also write the sweep result (points, means, stds) as a JSON "
            "payload, renderable later with 'scenario render'"
        ),
    )

    scenario_render = scenario_sub.add_parser(
        "render",
        help=(
            "render a saved 'scenario run/sweep --out' payload as a "
            "figure-style table, CSV or JSON"
        ),
    )
    scenario_render.add_argument(
        "payload", help="path to a JSON payload written with --out"
    )
    scenario_render.add_argument(
        "--format",
        choices=("table", "csv", "json"),
        default="table",
        help="output format (default: aligned ASCII table)",
    )
    scenario_render.add_argument(
        "--metrics",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict (and order) the rendered metrics",
    )
    scenario_render.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the rendering to FILE instead of stdout",
    )

    scenario_list = scenario_sub.add_parser(
        "list", help="list the bundled scenario presets"
    )
    scenario_list.add_argument(
        "--names", action="store_true", help="print bare preset names only"
    )

    serve = sub.add_parser(
        "serve",
        help="live asyncio pub/sub service mode (wall-clock runtime)",
        description=(
            "Run the protocol as a live pub/sub service on an asyncio "
            "event loop: build the requested topic groups, publish a "
            "deterministic round-robin workload over the in-process "
            "queue transport, and report per-topic delivery counts, "
            "network statistics and scheduler lag. With --verify-replay "
            "the recorded trace is re-executed on the discrete-event "
            "engine and the delivery sets are compared (the service "
            "mode's golden oracle)."
        ),
    )
    serve.add_argument(
        "--topics",
        nargs="+",
        default=[".conf:5", ".conf.dsn:10"],
        metavar="TOPIC:COUNT",
        help="topic groups to create, e.g. .conf:5 .conf.dsn:10",
    )
    serve.add_argument(
        "--publish",
        type=int,
        default=10,
        help="events to publish (round-robin over the topics)",
    )
    serve.add_argument("--seed", type=int, default=0, help="master seed")
    serve.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="abort the service run after this many wall-clock seconds",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the replayable live trace as JSON",
    )
    serve.add_argument(
        "--verify-replay",
        action="store_true",
        help=(
            "replay the recorded trace on the deterministic engine and "
            "fail (exit 1) unless the delivery sets match"
        ),
    )

    lint = sub.add_parser(
        "lint",
        help="run the determinism lint (rules DET001-DET005)",
        description=(
            "Statically check RNG-stream, purity, hash-order and "
            "NaN-validation invariants; exits 1 when any unsuppressed "
            "finding remains (see README, 'Determinism invariants')."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list pragma-suppressed findings and their rationales",
    )
    return parser


def _progress_printer(args: argparse.Namespace):
    """Per-point progress callback for ``--progress`` (None otherwise)."""
    if not getattr(args, "progress", False):
        return None

    def report(point, done: int, total: int) -> None:
        # Scenario sweeps can have non-numeric points (protocol names).
        shown = (
            f"{point:g}" if isinstance(point, (int, float)) else str(point)
        )
        print(f"[{done}/{total}] point={shown} done", file=sys.stderr)

    return report


def _run_figure_command(args: argparse.Namespace, executor: Executor) -> Table:
    runner = {
        "fig8": run_figure8,
        "fig9": run_figure9,
        "fig10": run_figure10,
        "fig11": run_figure11,
    }[args.command]
    return runner(
        grid=tuple(args.grid),
        runs=args.runs,
        master_seed=args.seed,
        scenario=_scenario_from(args),
        executor=executor,
        progress=_progress_printer(args),
    )


def _parse_cli_value(raw: str) -> Any:
    """JSON when it parses, bare string otherwise (so ``--set
    protocol=broadcast`` needs no shell-quoted JSON)."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _apply_overrides(spec: Mapping, pairs: Sequence[str]) -> Mapping:
    for pair in pairs:
        path, sep, raw = pair.partition("=")
        if not sep or not path:
            raise ConfigError(f"--set expects PATH=VALUE, got {pair!r}")
        spec = spec_with(spec, path, _parse_cli_value(raw))
    return spec


def _write_payload(path: str, payload: Mapping) -> None:
    # Atomic (temp file + os.replace): a crash mid-write can truncate a
    # stray temp file but never the payload a later render would read.
    write_json_atomic(path, payload, indent=2)
    print(f"wrote {path}", file=sys.stderr)


def _load_payload(path: str) -> Mapping:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise ConfigError(f"payload file {path!r} not found") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"payload file {path!r} is not valid JSON: {exc}"
        ) from exc


def _render_scenario_payload(args: argparse.Namespace) -> int:
    table = table_from_scenario_payload(
        _load_payload(args.payload), metrics=args.metrics
    )
    if args.format == "csv":
        rendered = table.to_csv()
    elif args.format == "json":
        rendered = table.to_json() + "\n"
    else:
        rendered = table.render() + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(rendered, end="")
    return 0


def _caching(
    executor: Executor, cache: str | None, run_key_payload: Mapping
) -> Executor:
    """Wrap ``executor`` with the artifact store when ``--cache`` is set."""
    if cache is None:
        return executor
    return CachingExecutor(
        executor, ArtifactStore(cache), spec_digest(run_key_payload)
    )


def _report_cache(executor: Executor) -> None:
    if isinstance(executor, CachingExecutor):
        print(
            f"cache: {executor.hits} hit(s), {executor.executed} executed",
            file=sys.stderr,
        )


def _run_scenario_command(args: argparse.Namespace, executor: Executor) -> int:
    if args.scenario_command == "render":
        return _render_scenario_payload(args)
    if args.scenario_command == "list":
        from repro.workloads.presets import load_preset, preset_names

        if args.names:
            for name in preset_names():
                print(name)
            return 0
        table = Table(
            "Bundled scenario presets",
            ["preset", "protocol", "description"],
        )
        for name in preset_names():
            spec = load_preset(name)
            protocol = spec.get("protocol", "daMulticast")
            if isinstance(protocol, Mapping):
                protocol = protocol.get("name", "?")
            table.add_row(name, protocol, spec.get("description", ""))
        print(table.render())
        return 0

    spec = _apply_overrides(load_spec(args.spec), args.overrides)
    progress = _progress_printer(args)
    if args.scenario_command == "run":
        executor = _caching(
            executor, args.cache, {"kind": "scenario-run", "spec": spec}
        )
        samples = run_scenario(
            spec,
            runs=args.runs,
            master_seed=args.seed,
            executor=executor,
            progress=progress,
        )
        _report_cache(executor)
        means, stds = aggregate_runs(samples)
        table = Table(
            f"scenario {spec.get('name', args.spec)} — metrics over "
            f"{args.runs} run(s), master seed {args.seed}",
            ["metric", "mean", "std"],
            precision=4,
        )
        for metric in sorted(means):
            table.add_row(metric, means[metric], stds[metric])
        print(table.render())
        digest = metrics_digest(samples)
        print(f"metrics digest: {digest}")
        if args.out:
            _write_payload(
                args.out,
                {
                    "schema": SCENARIO_RUN_SCHEMA,
                    "name": spec.get("name", args.spec),
                    "spec": spec,
                    "runs": args.runs,
                    "master_seed": args.seed,
                    "samples": samples,
                    "means": means,
                    "stds": stds,
                    "digest": digest,
                },
            )
        return 0

    # sweep
    values = [_parse_cli_value(value) for value in args.values]
    executor = _caching(
        executor,
        args.cache,
        {"kind": "scenario-sweep", "spec": spec, "field": args.field},
    )
    result = sweep_scenario(
        spec,
        args.field,
        values,
        runs=args.runs,
        master_seed=args.seed,
        executor=executor,
        progress=progress,
    )
    _report_cache(executor)
    metric_names = result.metric_names()
    table = Table(
        f"scenario sweep over {args.field} "
        f"({args.runs} run(s)/point, master seed {args.seed})",
        [args.field, *metric_names],
        precision=4,
    )
    for index, point in enumerate(result.points):
        table.add_row(
            point, *(result.means[metric][index] for metric in metric_names)
        )
    print(table.render())
    if args.out:
        _write_payload(
            args.out,
            {
                "schema": SCENARIO_SWEEP_SCHEMA,
                "name": spec.get("name", args.spec),
                "spec": spec,
                "field": args.field,
                "runs": args.runs,
                "master_seed": args.seed,
                "points": result.points,
                "means": result.means,
                "stds": result.stds,
            },
        )
    return 0


def _run_tuning_command(args: argparse.Namespace) -> Table:
    table = Table(
        f"Appendix tuning (pit={args.pit}, t={args.t})",
        ["baseline", "c", "feasible", "c_window", "c1", "z_bound"],
        precision=3,
    )
    for c in args.c:
        for result in (
            match_multicast(c, args.pit, t=args.t, s_t=args.s_t),
            match_broadcast(c, args.pit, t=args.t, n=args.n, s_t=args.s_t),
            match_hierarchical(c, args.pit, t=args.t, n_clusters=args.clusters),
        ):
            low, high = result.c_window
            table.add_row(
                result.baseline,
                c,
                result.feasible,
                f"[{low:.3f}, {high:.3f}]",
                "-" if result.c1 is None else f"{result.c1:.3f}",
                "-" if result.z_bound is None else f"{result.z_bound:.3f}",
            )
    return table


def _parse_topic_counts(pairs: Sequence[str]) -> list[tuple[str, int]]:
    """Parse ``TOPIC:COUNT`` arguments (e.g. ``.conf:5``)."""
    topics: list[tuple[str, int]] = []
    for pair in pairs:
        name, sep, raw = pair.rpartition(":")
        if not sep or not name:
            raise ConfigError(f"--topics expects TOPIC:COUNT, got {pair!r}")
        try:
            count = int(raw)
        except ValueError:
            raise ConfigError(
                f"--topics count must be an integer, got {pair!r}"
            ) from None
        if count < 1:
            raise ConfigError(f"--topics count must be >= 1, got {pair!r}")
        topics.append((name, count))
    return topics


def _run_serve_command(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import LiveRuntime, replay_live_trace

    topics = _parse_topic_counts(args.topics)
    if args.publish < 0:
        raise ConfigError(f"--publish must be >= 0, got {args.publish}")

    async def serve():
        runtime = LiveRuntime(seed=args.seed)
        for name, count in topics:
            runtime.add_group(name, count)
        async with runtime:
            for index in range(args.publish):
                topic = topics[index % len(topics)][0]
                await runtime.publish(topic, {"n": index})
            status = runtime.status()
        return runtime.trace(), status

    async def bounded():
        return await asyncio.wait_for(serve(), timeout=args.timeout)

    trace, status = asyncio.run(bounded())

    table = Table(
        f"live service (seed={args.seed}, published={status['published']}, "
        f"wall={status['now']:.3f}s)",
        ["topic", "deliveries"],
    )
    for name, delivered in sorted(status["deliveries_by_topic"].items()):
        table.add_row(name, delivered)
    print(table.render())
    queue = status["queue"]
    lag = status["scheduler_lag"]
    print(
        f"queue: {queue['executed']}/{queue['dispatched']} deliveries "
        f"executed, {queue['pending']} pending; "
        f"scheduler lag max {lag['max'] * 1e3:.3f} ms"
    )
    if args.trace_out:
        _write_payload(args.trace_out, trace)
    if args.verify_replay:
        result = replay_live_trace(trace)
        verdict = "match" if result["matches"] else "MISMATCH"
        print(f"engine replay: delivery sets {verdict}")
        if not result["matches"]:
            return 1
    return 0


def _run_lint_command(args: argparse.Namespace) -> int:
    from repro.lint import render_json, render_text, run_lint

    report = run_lint(args.paths)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
    return 0 if report.ok else 1


#: Subcommands that evaluate sweeps and therefore honour the shared
#: execution option group.
_SWEEPING_COMMANDS = frozenset(
    {
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "compare",
        "ablate-g",
        "ablate-c",
        "scale-s",
        "scale-t",
        "stream",
    }
)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint_command(args)
    if args.command == "serve":
        try:
            return _run_serve_command(args)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.command == "scenario":
        executor = None
        try:
            if args.scenario_command in ("run", "sweep"):
                executor = _resolved_executor(args)
            return _run_scenario_command(args, executor)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            if executor is not None:
                executor.close()
    executor = None
    try:
        if args.command in _SWEEPING_COMMANDS:
            executor = _resolved_executor(args)
        if args.command in ("fig8", "fig9", "fig10", "fig11"):
            print(_run_figure_command(args, executor).render())
        elif args.command == "compare":
            table = measured_comparison(
                scenario=PaperScenario(sizes=tuple(args.sizes)),
                runs=args.runs,
                master_seed=args.seed,
                executor=executor,
                progress=_progress_printer(args),
            )
            print(table.render())
        elif args.command == "analysis":
            scenario = ChainScenario(
                sizes=tuple(args.sizes), p_succ=args.p_succ
            )
            for table in comparison_table(scenario).values():
                print(table.render())
                print()
        elif args.command == "tuning":
            print(_run_tuning_command(args).render())
        elif args.command == "ablate-g":
            table = sweep_link_redundancy(
                g_values=tuple(args.values),
                alive_fraction=args.alive,
                runs=args.runs,
                executor=executor,
                progress=_progress_printer(args),
            )
            print(table.render())
        elif args.command == "ablate-c":
            table = sweep_fanout_constant(
                c_values=tuple(args.values),
                alive_fraction=args.alive,
                runs=args.runs,
                executor=executor,
                progress=_progress_printer(args),
            )
            print(table.render())
        elif args.command == "scale-s":
            from repro.experiments.scale import sweep_group_size

            print(
                sweep_group_size(
                    s_values=tuple(args.values),
                    runs=args.runs,
                    executor=executor,
                    progress=_progress_printer(args),
                ).render()
            )
        elif args.command == "scale-t":
            from repro.experiments.scale import sweep_depth

            print(
                sweep_depth(
                    t_values=tuple(args.values),
                    level_size=args.level_size,
                    runs=args.runs,
                    executor=executor,
                    progress=_progress_printer(args),
                ).render()
            )
        elif args.command == "stream":
            from repro.experiments.multievent import stream_table

            print(
                stream_table(
                    rates=tuple(args.rates),
                    runs=args.runs,
                    executor=executor,
                    progress=_progress_printer(args),
                ).render()
            )
    finally:
        if executor is not None:
            executor.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
