"""ColumnarStaticSystem — the §VII simulator at 10⁵–10⁶ processes.

The object backend (:class:`~repro.core.system.DaMulticastSystem`) builds
one :class:`~repro.core.process.DaMulticastProcess` per process — its own
RNG stream, tables, descriptor, actor registration. That graph is what
hits the wall around S≈10⁴. This backend keeps the *protocol* (the same
Fig. 5/Fig. 7 code in :mod:`repro.core.dissemination` runs unchanged) but
replaces the per-process state with:

* **one pid block per group** — pids are contiguous, so membership lives
  in :class:`~repro.membership.columnar.ColumnarGroupTables` pid arrays
  and a process is just an index;
* **one network actor per group** — a :class:`ColumnarGroupActor`
  registered via :meth:`~repro.net.network.Network.register_block`
  receives whole delivery batches (``handle_batch``) and walks them with
  index arithmetic;
* **one flyweight peer per group** — rebound to the acting member before
  each ``disseminate`` call, so the protocol code sees the
  :class:`~repro.core.dissemination.DisseminationPeer` interface without
  a peer object per process;
* **per-event seen bitmasks** — Fig. 5's first-reception dedup as one
  ``bytearray(S)`` per in-flight event per group instead of a Python set
  of event-id tuples per process.

Construction is **bit-identical** to the object backend: the same
``"static-membership"`` RNG stream, the same per-member interleaving of
topic-table and super-table draws, the same branch structure (see
membership/columnar.py) — pinned by :meth:`construction_digest` matching
:meth:`DaMulticastSystem.construction_digest` on the S=500 golden.
*Runtime* draws use per-group streams (``group/<topic>``): one Mersenne
state per group instead of ~2.5 KB per process, statistically equivalent
gossip, not trajectory-gated against the object backend.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Iterator

from repro.core.dissemination import disseminate, should_deliver
from repro.core.events import Event, EventId
from repro.core.params import DaMulticastConfig, TopicParams
from repro.errors import ConfigError, ProtocolError, UnknownTopic
from repro.membership.columnar import ColumnarGroupTables, build_group_tables
from repro.membership.static import nearest_populated_super
from repro.net.latency import LatencyModel, ZERO_LATENCY
from repro.net.message import EventMessage, Message
from repro.failures.model import FailureModel
from repro.runtime import SimulationHarness
from repro.topics.hierarchy import TopicHierarchy
from repro.topics.topic import Topic


class _Ref:
    """A pid/topic pair quacking like a ProcessDescriptor (transient,
    built per dissemination from the pid columns)."""

    __slots__ = ("pid", "topic")

    def __init__(self, pid: int, topic: Topic):
        self.pid = pid
        self.topic = topic


class _ColumnarTopicView:
    """Flyweight topic-table view over the acting member's row."""

    __slots__ = ("tables", "index")

    def __init__(self, tables: ColumnarGroupTables):
        self.tables = tables
        self.index = 0

    def sample(
        self, k: int, rng: random.Random, exclude: Any = ()
    ) -> list[_Ref]:
        """Index-based uniform draw off the member's pid row.

        ``exclude`` is accepted for interface parity and ignored: the
        member's own pid is excluded at construction time, and the static
        protocol never excludes anything else.
        """
        tables = self.tables
        topic = tables.topic
        return [
            _Ref(pid, topic)
            for pid in tables.sample_row(self.index, k, rng)
        ]

    def __len__(self) -> int:
        return self.tables.stride


class _ColumnarSuperView:
    """Flyweight ``sTable`` view over the acting member's super row."""

    __slots__ = ("tables", "index")

    def __init__(self, tables: ColumnarGroupTables):
        self.tables = tables
        self.index = 0

    @property
    def is_empty(self) -> bool:
        return self.tables.super_stride == 0

    @property
    def target_topic(self) -> Topic | None:
        return self.tables.super_topic

    def descriptors(self) -> tuple[_Ref, ...]:
        tables = self.tables
        super_topic = tables.super_topic
        return tuple(
            _Ref(pid, super_topic)
            for pid in tables.super_row_pids(self.index)
        )

    def __len__(self) -> int:
        return self.tables.super_stride


class _MemberPeer:
    """The flyweight :class:`DisseminationPeer`: one instance per group,
    rebound (pid + view indices) to the acting member per dissemination."""

    __slots__ = (
        "pid", "topic", "rng", "params", "group_size",
        "_network", "_topic_view", "_super_view",
    )

    def __init__(
        self,
        tables: ColumnarGroupTables,
        params: TopicParams,
        network,
        rng: random.Random,
    ):
        self.pid = tables.base
        self.topic = tables.topic
        self.rng = rng
        self.params = params
        self.group_size = tables.size
        self._network = network
        self._topic_view = _ColumnarTopicView(tables)
        self._super_view = _ColumnarSuperView(tables)

    def bind(self, index: int, base: int) -> None:
        self.pid = base + index
        self._topic_view.index = index
        self._super_view.index = index

    def topic_table(self) -> _ColumnarTopicView:
        return self._topic_view

    @property
    def super_table(self) -> _ColumnarSuperView:
        return self._super_view

    def send(self, target: int, message: Message) -> None:
        self._network.send(self.pid, target, message)

    def multicast(self, targets, message: Message) -> None:
        self._network.multicast(self.pid, targets, message)


class ColumnarGroupActor:
    """One block actor running Fig. 5's RECEIVE for a whole group."""

    __slots__ = ("topic", "tables", "engine", "tracker", "_peer", "_seen")

    def __init__(
        self,
        tables: ColumnarGroupTables,
        params: TopicParams,
        engine,
        network,
        rng: random.Random,
        tracker,
    ):
        self.topic = tables.topic
        self.tables = tables
        self.engine = engine
        self.tracker = tracker
        self._peer = _MemberPeer(tables, params, network, rng)
        #: event_id -> seen bitmask (1 byte per member, per in-flight event)
        self._seen: dict[EventId, bytearray] = {}

    # ------------------------------------------------------------------
    # Network entry point
    # ------------------------------------------------------------------
    def handle_batch(self, sender: int, targets, message: Message) -> None:
        """Deliver one message to every target index of this group."""
        if not isinstance(message, EventMessage):
            raise ProtocolError(
                f"columnar group {self.topic.name} cannot handle "
                f"{type(message).__name__}"
            )
        event = message.event
        # Property 4 (no parasite messages), asserted once per batch —
        # every target shares this group's topic.
        if not should_deliver(event, self.topic):
            raise ProtocolError(
                f"parasite delivery: group {self.topic.name} got event of "
                f"{event.topic.name}"
            )
        mask = self._seen.get(event.event_id)
        if mask is None:
            mask = self._seen[event.event_id] = bytearray(self.tables.size)
        base = self.tables.base
        hops = message.hops
        now = self.engine.now
        tracker = self.tracker
        for pid in targets:
            index = pid - base
            if mask[index]:
                continue  # Fig. 5: later copies are ignored
            mask[index] = 1
            if tracker is not None:
                tracker.record_delivery(pid, event, now, hops=hops)
            self._disseminate_from(index, event, arrival_hops=hops)

    def _disseminate_from(
        self,
        index: int,
        event: Event,
        *,
        arrival_hops: int,
        force_link: bool = False,
    ) -> None:
        peer = self._peer
        peer.bind(index, self.tables.base)
        disseminate(
            peer, event, force_link=force_link, arrival_hops=arrival_hops
        )

    # ------------------------------------------------------------------
    # Publishing (driven by the system facade)
    # ------------------------------------------------------------------
    def publish_from(
        self, index: int, event: Event, *, force_link: bool
    ) -> None:
        """Fig. 7 lines 1-2 for the member at ``index``: deliver locally,
        then disseminate (the publisher has already been recorded)."""
        mask = self._seen.get(event.event_id)
        if mask is None:
            mask = self._seen[event.event_id] = bytearray(self.tables.size)
        mask[index] = 1
        if self.tracker is not None:
            self.tracker.record_delivery(
                self.tables.base + index, event, self.engine.now, hops=0
            )
        self._disseminate_from(
            index, event, arrival_hops=0, force_link=force_link
        )

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def seen_count(self, event_id: EventId) -> int:
        """How many group members have seen ``event_id``."""
        mask = self._seen.get(event_id)
        return sum(mask) if mask is not None else 0

    def release_event_state(self, event_id: EventId) -> None:
        """Drop the seen bitmask of a finished event (dedup state is only
        needed while copies are still in flight)."""
        self._seen.pop(event_id, None)

    def clear_event_state(self) -> None:
        """Drop every seen bitmask (e.g. between measurement rounds)."""
        self._seen.clear()

    def membership_bytes(self) -> int:
        """Bytes of frozen membership state for the whole group."""
        return self.tables.nbytes()

    def __repr__(self) -> str:
        return (
            f"ColumnarGroupActor({self.topic.name}, S={self.tables.size}, "
            f"in_flight={len(self._seen)})"
        )


class ColumnarStaticSystem:
    """The paper's static-mode simulator over columnar group state.

    API mirrors the static subset of :class:`DaMulticastSystem`
    (``add_group`` / ``finalize_static_membership`` / ``publish`` /
    ``run_until_idle`` / ``construction_digest``), with two scale-driven
    differences: each topic gets exactly one contiguous pid block (one
    ``add_group`` call per topic), and the delivery tracker defaults to
    the O(topics) streaming mode.
    """

    def __init__(
        self,
        *,
        config: DaMulticastConfig | None = None,
        seed: int = 0,
        p_success: float = 1.0,
        latency: LatencyModel = ZERO_LATENCY,
        failure_model: FailureModel | None = None,
        tracker: str = "streaming",
        trace: bool = False,
    ):
        self.config = config or DaMulticastConfig()
        self.harness = SimulationHarness(
            seed=seed,
            p_success=p_success,
            latency=latency,
            failure_model=failure_model,
            trace=trace,
            tracker=tracker,
        )
        self.hierarchy = TopicHierarchy()
        self._blocks: dict[Topic, range] = {}
        self._actors: dict[Topic, ColumnarGroupActor] = {}
        #: lazily cached alive pids per topic (static failure models are
        #: time-invariant in this mode, matching the §VII setting)
        self._alive_cache: dict[Topic, list[int]] = {}
        self._publish_seq: dict[int, int] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The discrete-event engine."""
        return self.harness.engine

    @property
    def network(self):
        """The unreliable network."""
        return self.harness.network

    @property
    def stats(self):
        """Network statistics (message counts per kind/group)."""
        return self.harness.stats

    @property
    def tracker(self):
        """The delivery tracker (streaming by default)."""
        return self.harness.tracker

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.harness.now

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Advance the simulation."""
        return self.harness.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 100_000_000) -> int:
        """Run to quiescence."""
        return self.harness.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_group(self, topic: Topic | str, count: int) -> range:
        """Reserve one contiguous pid block of ``count`` processes for
        ``topic``; returns the pid range. One call per topic."""
        if self._finalized:
            raise ConfigError("membership already finalized")
        resolved = self.hierarchy.add(topic)
        if resolved in self._blocks:
            raise ConfigError(
                f"columnar backend: group {resolved.name} already added "
                "(one contiguous pid block per topic)"
            )
        block = self.harness.reserve_pid_block(count)
        self._blocks[resolved] = block
        return block

    def finalize_static_membership(self) -> None:
        """Draw all membership columns once, from global knowledge.

        Same RNG stream, group order, and per-member draw interleaving as
        the object backend's ``finalize_static_membership`` — the S=500
        construction-digest golden pins the equality.
        """
        if self._finalized:
            raise ConfigError("membership already finalized")
        if not self._blocks:
            raise ConfigError("no groups added")
        rng = self.harness.rngs.stream("static-membership")
        population = self._blocks
        for topic, block in self._blocks.items():
            params = self.config.params_for(topic)
            capacity = params.table_capacity(len(block))
            super_topic = nearest_populated_super(topic, population)
            if super_topic is not None:
                super_block = population[super_topic]
                super_base, super_size = super_block.start, len(super_block)
            else:
                super_base = super_size = 0
            tables = build_group_tables(
                topic,
                block.start,
                len(block),
                capacity,
                rng,
                super_topic=super_topic,
                super_base=super_base,
                super_size=super_size,
                z=params.z,
            )
            actor = ColumnarGroupActor(
                tables,
                params,
                self.engine,
                self.network,
                self.harness.rngs.stream(f"group/{topic.name}"),
                self.tracker,
            )
            self.network.register_block(actor, block.start, block.stop)
            self._actors[topic] = actor
        self._finalized = True

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        topic: Topic | str,
        payload: Any = None,
        *,
        publisher_pid: int | None = None,
    ) -> Event:
        """Publish one event on ``topic`` from an alive group member
        (uniformly chosen when ``publisher_pid`` is not given)."""
        if not self._finalized:
            raise ConfigError(
                "columnar backend: call finalize_static_membership() "
                "before publishing"
            )
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        block = self._blocks.get(resolved)
        if block is None:
            raise UnknownTopic(f"no group for topic {resolved.name}")
        if publisher_pid is None:
            alive = self._alive_pids(resolved)
            if not alive:
                raise UnknownTopic(
                    f"no alive process interested in {resolved.name} "
                    "to publish from"
                )
            publisher_pid = self.harness.rngs.stream("publish").choice(alive)
        elif publisher_pid not in block:
            raise ConfigError(
                f"pid {publisher_pid} is not a member of {resolved.name}"
            )
        sequence = self._publish_seq.get(publisher_pid, 0) + 1
        self._publish_seq[publisher_pid] = sequence
        event = Event(
            event_id=EventId(publisher_pid, sequence),
            topic=resolved,
            payload=payload,
            published_at=self.now,
        )
        if self.tracker is not None:
            # Intended receivers over a perfect network: the topic's own
            # block plus every populated ancestor block (inclusion).
            expected = sum(
                len(members)
                for t, members in self._blocks.items()
                if t.includes(resolved)
            )
            self.tracker.record_publish(
                event, publisher_pid, expected=expected
            )
        self._actors[resolved].publish_from(
            publisher_pid - block.start,
            event,
            force_link=self.config.publisher_always_links,
        )
        return event

    def _alive_pids(self, topic: Topic) -> list[int]:
        alive = self._alive_cache.get(topic)
        if alive is None:
            is_alive = self.harness.is_alive
            alive = self._alive_cache[topic] = [
                pid for pid in self._blocks[topic] if is_alive(pid)
            ]
        return alive

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def topics(self) -> list[Topic]:
        """All topics with a group, in pid-block order."""
        return list(self._blocks)

    def group_pids(self, topic: Topic | str) -> list[int]:
        """The pid block of ``topic``'s group."""
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        block = self._blocks.get(resolved)
        return list(block) if block is not None else []

    def group_actor(self, topic: Topic | str) -> ColumnarGroupActor:
        """The block actor running ``topic``'s group."""
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        try:
            return self._actors[resolved]
        except KeyError:
            raise UnknownTopic(f"no group for topic {resolved.name}") from None

    def seen_fraction(self, event: Event, topic: Topic | str) -> float:
        """Fraction of ``topic``'s group that received ``event`` (off the
        group's seen bitmask — works with the streaming tracker)."""
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        actor = self.group_actor(resolved)
        size = actor.tables.size
        return actor.seen_count(event.event_id) / size if size else 1.0

    def membership_bytes(self) -> int:
        """Total frozen membership bytes across every group's columns."""
        return sum(a.membership_bytes() for a in self._actors.values())

    def processes(self) -> Iterator[int]:
        """Every pid, ascending (blocks are allocated in group order)."""
        # repro-lint: allow[DET003]: blocks are allocated in ascending-pid group order, so insertion order IS the documented order
        for block in self._blocks.values():
            yield from block

    def construction_digest(self) -> str:
        """SHA-256 over every member's table contents, in pid order —
        byte-compatible with :meth:`DaMulticastSystem.construction_digest`,
        and with the S=500 golden in tests/test_golden_static.py."""
        if not self._finalized:
            raise ConfigError("finalize_static_membership() first")
        digest = hashlib.sha256()
        for topic, block in self._blocks.items():
            tables = self._actors[topic].tables
            target = str(tables.super_topic).encode()
            for index in range(len(block)):
                digest.update(b"T")
                digest.update(
                    ",".join(map(str, tables.row_pids(index))).encode()
                )
                digest.update(b"S")
                digest.update(
                    ",".join(map(str, tables.super_row_pids(index))).encode()
                )
                digest.update(target)
        return digest.hexdigest()

    def __repr__(self) -> str:
        total = sum(len(block) for block in self._blocks.values())
        return (
            f"ColumnarStaticSystem(processes={total}, "
            f"groups={len(self._blocks)}, finalized={self._finalized})"
        )
