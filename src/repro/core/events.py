"""Published events (``e_Ti``) and their identities.

Every event carries a globally unique :class:`EventId` so receivers can
deduplicate (Fig. 5: "if e_Ti not received" — forward/deliver only on first
receipt). Identity is (publisher pid, publisher-local sequence number),
which needs no coordination and is stable across retransmissions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.topics.topic import Topic


@dataclass(frozen=True, slots=True, order=True)
class EventId:
    """Unique identity of a published event."""

    publisher: int
    sequence: int

    def __str__(self) -> str:
        return f"e{self.publisher}.{self.sequence}"


@dataclass(frozen=True, slots=True)
class Event:
    """An application event of topic ``topic`` (the paper's ``e_Ti``).

    ``topic`` is the topic the event was *published* on; inclusion makes it
    implicitly an event of every supertopic, which is exactly what the
    upward dissemination realizes. ``payload`` is opaque to the protocol.
    """

    event_id: EventId
    topic: Topic
    payload: Any = None
    published_at: float = 0.0

    def is_of_topic(self, other: Topic) -> bool:
        """Whether this event is (also) an event of ``other``.

        True when ``other`` includes the publication topic: an event of
        ``.dsn04.reviewers`` is an event of ``.dsn04`` and of the root.
        """
        return other.includes(self.topic)

    def __str__(self) -> str:
        return f"{self.event_id}@{self.topic.name}"


class EventFactory:
    """Mints :class:`Event` instances with per-publisher sequence numbers."""

    def __init__(self, publisher: int):
        self.publisher = publisher
        self._sequence = itertools.count(1)

    def create(self, topic: Topic, payload: Any, now: float) -> Event:
        """Create the next event of this publisher."""
        return Event(
            event_id=EventId(self.publisher, next(self._sequence)),
            topic=topic,
            payload=payload,
            published_at=now,
        )
