"""KEEP_TABLE_UPDATED — the supertopic-table maintenance task of Fig. 6.

Repeatedly (every ``maintain_interval``), each process:

* restarts FIND_SUPER_CONTACT when its supertopic table is empty
  (lines 12–14);
* otherwise, with probability ``p_sel`` (line 16 — the paper writes
  ``RAND() ≥ p_sel`` but means the check happens with probability
  ``p_sel``, so that on average ``g`` processes per group probe per period;
  DESIGN.md note 1), probes the liveness of its supertopic entries by
  pinging them and counting Pongs within ``ping_timeout`` (the CHECK
  function, footnote 7);
* if at most ``τ`` entries prove alive, asks each live superprocess for
  ``z − τ`` fresh supergroup members (lines 18–21); replies are merged with
  the MERGE semantics (favorites kept, failed replaced — footnote 5);
* if *nothing* proves alive, the table is cleared so the next tick
  restarts the bootstrap search.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.net.message import NewProcessReply, NewProcessRequest, Ping
from repro.sim.clock import PeriodicTask
from repro.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.process import DaMulticastProcess


class KeepTableUpdated:
    """The per-process maintenance task."""

    _nonces = itertools.count(1)

    def __init__(
        self,
        process: "DaMulticastProcess",
        *,
        interval: float,
        ping_timeout: float,
    ):
        check_positive(interval, "interval")
        check_positive(ping_timeout, "ping_timeout")
        self._process = process
        self._interval = interval
        self._ping_timeout = ping_timeout
        self._task: PeriodicTask | None = None
        self.probes_started = 0
        self.refreshes_requested = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the periodic task is active."""
        return self._task is not None and self._task.running

    def start(self) -> None:
        """Start the periodic maintenance loop (no-op for root processes,
        whose supertopic table does not exist)."""
        if self.running or self._process.topic.is_root:
            return
        self._task = self._process.engine.every(self._interval, self._tick)

    def stop(self) -> None:
        """Stop maintaining (unsubscribe/shutdown)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    # The periodic body (Fig. 6 lines 10-25)
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        process = self._process
        table = process.super_table
        if table.is_empty:
            process.find_super_contact.start()
            return
        if process.rng.random() < process.params.p_sel(process.group_size):
            self._probe()

    def _probe(self) -> None:
        """Ping every supertopic entry (one batched multicast), then
        evaluate after the timeout."""
        process = self._process
        self.probes_started += 1
        nonce = next(self._nonces)
        process.multicast(
            process.super_table.pids, Ping(sender=process.pid, nonce=nonce)
        )
        process.engine.schedule(self._ping_timeout, self._evaluate)

    def _evaluate(self) -> None:
        process = self._process
        table = process.super_table
        now = process.engine.now
        alive = table.check(now, self._ping_timeout)
        if alive > process.params.tau:
            return  # enough live superprocesses; nothing to do
        live_pids = table.alive_pids(now, self._ping_timeout)
        if not live_pids:
            # Everyone is gone: restart the search from scratch.
            table.clear()
            process.find_super_contact.start()
            return
        wanted = max(1, process.params.z - alive)
        self.refreshes_requested += 1
        process.multicast(
            live_pids, NewProcessRequest(sender=process.pid, wanted=wanted)
        )

    # ------------------------------------------------------------------
    # Message handlers (wired by the process)
    # ------------------------------------------------------------------
    def on_new_process_request(self, message: NewProcessRequest) -> None:
        """Superprocess side (Fig. 6 lines 2-5): answer with known members."""
        process = self._process
        sample = process.topic_table().sample(message.wanted, process.rng)
        contacts = (process.descriptor, *sample)
        process.send(
            message.sender,
            NewProcessReply(sender=process.pid, contacts=contacts),
        )

    def on_new_process_reply(self, message: NewProcessReply) -> None:
        """Subscriber side (Fig. 6 lines 6-9): MERGE fresh entries in."""
        process = self._process
        table = process.super_table
        now = process.engine.now
        table.record_proof_of_life(message.sender, now)
        stale = table.stale_pids(now, 2 * self._ping_timeout)
        table.merge_fresh(stale, message.contacts)

    def __repr__(self) -> str:
        return (
            f"KeepTableUpdated(pid={self._process.pid}, running={self.running}, "
            f"probes={self.probes_started})"
        )
