"""daMulticast — the paper's contribution.

The core package implements §V of the paper:

* :mod:`~repro.core.params` — the per-topic tuning knobs
  (``b, c, g, a, z, τ``) and derived probabilities
  (``p_sel = g/S``, ``p_a = a/z``) with validation,
* :mod:`~repro.core.events` — published events and their identities,
* :mod:`~repro.core.tables` — the topic table and supertopic table with
  the paper's MERGE and CHECK semantics,
* :mod:`~repro.core.dissemination` — Fig. 7's DISSEMINATE and Fig. 5's
  RECEIVE,
* :mod:`~repro.core.bootstrap` — Fig. 4's FIND_SUPER_CONTACT task,
* :mod:`~repro.core.maintenance` — Fig. 6's KEEP_TABLE_UPDATED task,
* :mod:`~repro.core.process` — the protocol actor gluing the above,
* :mod:`~repro.core.system` — the user-facing facade used by examples
  and experiments,
* :mod:`~repro.core.multiparent` — the §VIII multi-supertopic extension.
"""

from repro.core.events import Event, EventId
from repro.core.params import DaMulticastConfig, TopicParams
from repro.core.process import DaMulticastProcess
from repro.core.system import DaMulticastSystem

__all__ = [
    "Event",
    "EventId",
    "TopicParams",
    "DaMulticastConfig",
    "DaMulticastProcess",
    "DaMulticastSystem",
]
