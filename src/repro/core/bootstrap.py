"""FIND_SUPER_CONTACT — the bootstrap search of Fig. 4.

A process joining topic ``Ti`` must populate its supertopic table. If no
contact in ``super(Ti)`` is known a priori, it floods ``REQCONTACT``
messages over the weakly-consistent global overlay (``neighborhood(p)``),
asking for processes interested in a *widening* list of supertopics:

* the search starts with ``[super(Ti)]``;
* after each timeout with no (satisfying) answer, the next supertopic up is
  appended, until the list contains the root topic (Fig. 4 lines 19–27);
* any process knowing contacts for a listed topic answers ``ANSCONTACT``
  directly to the requester; otherwise it re-floods to its own
  neighborhood while the message's TTL lasts (lines 4–12);
* an answer for exactly ``super(Ti)`` stops the task; an answer for a
  farther supertopic ``Tx`` initializes the table but *narrows* the search
  to topics below ``Tx`` and keeps going (lines 30–36; prose §V-A.2.a — we
  follow the prose where the pseudo-code's stop condition reads
  ``Tx == Ti``, see DESIGN.md note 4).

Answers merge into the supertopic table via
:meth:`repro.core.tables.SuperTopicTable.adopt`, whose re-targeting rule
(deeper supertopic wins) implements the narrowing.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.membership.view import ProcessDescriptor
from repro.net.message import AnsContact, ReqContact
from repro.sim.clock import PeriodicTask
from repro.topics.topic import Topic
from repro.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.process import DaMulticastProcess


class FindSuperContact:
    """The per-process FIND_SUPER_CONTACT task."""

    _request_ids = itertools.count(1)

    def __init__(
        self,
        process: "DaMulticastProcess",
        *,
        timeout: float,
        ttl: int,
        max_attempts: int | None = 10,
    ):
        check_positive(timeout, "timeout")
        self._process = process
        self._timeout = timeout
        self._ttl = ttl
        self._max_attempts = max_attempts
        self._targets: list[Topic] = []
        self._attempts = 0
        self._task: PeriodicTask | None = None
        self.active = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin (or restart) the search; no-op if already running or if
        the process's topic is the root (which has no supertopic)."""
        if self.active:
            return
        own = self._process.topic
        if own.is_root:
            return
        direct_super = own.super_topic
        assert direct_super is not None
        self._targets = [direct_super]
        self._attempts = 0
        self.active = True
        self._flood()  # first attempt immediately (Fig. 4 starts eagerly)
        self._task = self._process.engine.every(
            self._timeout, self._on_timeout, initial_delay=self._timeout
        )

    def stop(self) -> None:
        """Stop searching (direct supercontact found, or shutting down)."""
        self.active = False
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------
    # Periodic widening (Fig. 4 lines 14-28)
    # ------------------------------------------------------------------
    def _on_timeout(self) -> bool:
        if not self.active:
            return False
        if self._max_attempts is not None and self._attempts >= self._max_attempts:
            # Give up for now; KEEP_TABLE_UPDATED restarts us if the table
            # is still empty (Fig. 6 lines 12-14).
            self.stop()
            return False
        self._widen()
        self._flood()
        return True

    def _widen(self) -> None:
        """Append the next supertopic up, until the root is included."""
        farthest = self._targets[-1]
        next_up = farthest.super_topic
        if next_up is not None and next_up not in self._targets:
            self._targets.append(next_up)

    def _flood(self) -> None:
        process = self._process
        self._attempts += 1
        request = ReqContact(
            sender=process.pid,
            requester=process.pid,
            topics=tuple(self._targets),
            request_id=next(self._request_ids),
            ttl=self._ttl,
        )
        process.multicast(
            [contact.pid for contact in process.neighborhood()], request
        )

    # ------------------------------------------------------------------
    # Answer processing (Fig. 4 lines 29-37)
    # ------------------------------------------------------------------
    def on_answer(self, message: AnsContact) -> None:
        """Merge an ``ANSCONTACT`` and stop/narrow the search accordingly."""
        if not self.active:
            # Late answers still improve the table (MERGE, line 36).
            self._process.super_table.adopt(
                message.answered_topic,
                message.contacts,
                self._process.rng,
                own_topic=self._process.topic,
            )
            return
        own = self._process.topic
        answered = message.answered_topic
        adopted = self._process.super_table.adopt(
            answered, message.contacts, self._process.rng, own_topic=own
        )
        if not adopted:
            return
        if answered == own.super_topic:
            self.stop()  # found the direct supertopic: done (line 31-32)
        else:
            # Narrow: drop every target that includes the found topic
            # (line 34) — keep searching only below Tx.
            self._targets = [
                t for t in self._targets if not t.includes(answered)
            ] or [own.super_topic]  # never let the list go empty

    def __repr__(self) -> str:
        names = [t.name for t in self._targets]
        return (
            f"FindSuperContact(pid={self._process.pid}, active={self.active}, "
            f"targets={names}, attempts={self._attempts})"
        )


def handle_req_contact(
    process: "DaMulticastProcess", message: ReqContact
) -> None:
    """The receiver side of the flood (Fig. 4 lines 2-13), run by *every*
    process: answer if we know contacts for a listed topic, else re-flood.
    """
    # Dedup: each process forwards/answers a given request once.
    key = (message.requester, message.request_id)
    if key in process.seen_requests:
        return
    process.seen_requests.add(key)
    if message.requester == process.pid:
        return

    known = known_contacts_for(process, message.topics)
    if known:
        answered_topic, contacts = known
        process.send(
            message.requester,
            AnsContact(
                sender=process.pid,
                answered_topic=answered_topic,
                contacts=tuple(contacts),
                request_id=message.request_id,
            ),
        )
        return  # Fig. 4 line 7: answer and stop forwarding.

    if message.ttl > 0:
        forwarded = ReqContact(
            sender=process.pid,
            requester=message.requester,
            topics=message.topics,
            request_id=message.request_id,
            ttl=message.ttl - 1,
        )
        process.multicast(
            [
                contact.pid
                for contact in process.neighborhood()
                if contact.pid != message.sender
                and contact.pid != message.requester
            ],
            forwarded,
        )


def known_contacts_for(
    process: "DaMulticastProcess", topics: tuple[Topic, ...]
) -> tuple[Topic, list[ProcessDescriptor]] | None:
    """Contacts this process can vouch for, for the *deepest* listed topic.

    Preference order: the deepest topic wins because it is the most useful
    answer (closest to the requester's own topic). Sources of knowledge:
    our own identity and topic table (all interested in our topic) and our
    supertopic table (interested in its target topic).
    """
    by_topic: dict[Topic, list[ProcessDescriptor]] = {}
    wanted = set(topics)
    if process.topic in wanted:
        mine = [process.descriptor]
        mine.extend(process.topic_table().descriptors())
        by_topic[process.topic] = mine
    super_table = process.super_table
    if super_table.target_topic in wanted and len(super_table):
        by_topic.setdefault(super_table.target_topic, []).extend(
            super_table.descriptors()
        )
    if not by_topic:
        return None
    deepest = max(by_topic, key=lambda t: t.depth)
    # Bound the answer size: a z-sized sample is all the requester can hold.
    contacts = by_topic[deepest][: max(4, process.params.z)]
    return deepest, contacts
