"""Per-topic protocol parameters and derived quantities.

The paper exposes, for every topic ``Ti`` of the hierarchy, the knobs that
trade message complexity against reliability (§V, §VI-D):

* ``b`` — topic-table size factor: the underlying membership algorithm
  [10] uses tables of size ``(b+1)·log(S_Ti)``,
* ``c`` — gossip fan-out constant: events are forwarded to ``log(S_Ti)+c``
  group members; intra-group reliability is ``e^{-e^{-c}}`` [3],
* ``g`` — expected number of processes self-electing as inter-group links:
  ``p_sel = g/S_Ti``,
* ``a`` — expected supertopic-table recipients per link: each entry is
  chosen with ``p_a = a/z``,
* ``z`` — supertopic-table size (constant, §V-A.1),
* ``τ`` — maintenance threshold: when fewer than ``τ`` superprocesses
  respond, fresh entries are requested (Fig. 6 lines 18–21).

``fanout_log_base`` selects the logarithm used for table sizes and
fan-outs. The analysis requires ``e`` (the Erdős–Rényi threshold), but the
paper's own simulator evidently used base 10 (Fig. 8's scale — see
DESIGN.md, faithfulness note 2), so the paper-scenario experiments override
it to 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import ConfigError
from repro.topics.topic import Topic


@dataclass(frozen=True, slots=True)
class TopicParams:
    """The tunable constants of one topic's group (immutable)."""

    b: float = 3.0
    c: float = 5.0
    g: float = 5.0
    a: float = 1.0
    z: int = 3
    tau: int = 1
    fanout_log_base: float = math.e

    def __post_init__(self) -> None:
        if self.b < 0:
            raise ConfigError(f"b must be >= 0, got {self.b}")
        if self.c < 0:
            raise ConfigError(f"c must be >= 0, got {self.c}")
        if self.z < 1:
            raise ConfigError(f"z must be >= 1, got {self.z}")
        if not 1 <= self.a <= self.z:
            raise ConfigError(f"need 1 <= a <= z, got a={self.a}, z={self.z}")
        if self.g < 1:
            raise ConfigError(f"g must be >= 1, got {self.g}")
        if not 0 <= self.tau <= self.z:
            raise ConfigError(f"need 0 <= tau <= z, got tau={self.tau}, z={self.z}")
        if self.fanout_log_base <= 1:
            raise ConfigError(
                f"fanout_log_base must be > 1, got {self.fanout_log_base}"
            )

    # ------------------------------------------------------------------
    # Derived quantities (all take the group size S at call time, since
    # S is a property of the running system, not of the configuration).
    # ------------------------------------------------------------------
    def p_sel(self, group_size: int) -> float:
        """Self-election probability ``p_sel = g/S`` (clamped to 1)."""
        if group_size < 1:
            raise ConfigError(f"group size must be >= 1, got {group_size}")
        return min(1.0, self.g / group_size)

    @property
    def p_a(self) -> float:
        """Per-supertable-entry send probability ``p_a = a/z``."""
        return self.a / self.z

    def fanout(self, group_size: int) -> int:
        """Intra-group gossip fan-out ``log(S)+c`` (Fig. 7 line 9).

        At least 1 whenever the group has anyone else to talk to; the log of
        a singleton group is 0 and fan-out is then just ``c``.
        """
        if group_size < 1:
            raise ConfigError(f"group size must be >= 1, got {group_size}")
        log_term = math.log(group_size, self.fanout_log_base) if group_size > 1 else 0.0
        return max(1, math.ceil(log_term + self.c))

    def table_capacity(self, group_size: int) -> int:
        """Topic-table size ``(b+1)·log(S)`` of the [10] membership."""
        if group_size < 1:
            raise ConfigError(f"group size must be >= 1, got {group_size}")
        if group_size == 1:
            return 1
        log_term = math.log(group_size, self.fanout_log_base)
        return max(1, math.ceil((self.b + 1) * log_term))

    def memory_footprint(self, group_size: int, has_super: bool = True) -> float:
        """The §VI-C memory complexity ``log(S)+c (+z)`` of one process."""
        log_term = math.log(group_size, self.fanout_log_base) if group_size > 1 else 0.0
        footprint = log_term + self.c
        if has_super:
            footprint += self.z
        return footprint


@dataclass(frozen=True)
class DaMulticastConfig:
    """System-wide configuration: defaults plus per-topic overrides.

    The paper stresses that every constant can be chosen *per topic in the
    hierarchy* ("provides the application a means to control, for each
    topic in a hierarchy, the trade-off between the message complexity and
    the reliability"). ``params_for`` resolves a topic to its parameters.

    ``publisher_always_links`` restores §IV-C's "p1 sends its events to at
    least one process from its super topic table" for the publishing
    process (see DESIGN.md, faithfulness note 3).

    ``inherit_overrides`` makes an override apply to the whole subtree of
    its topic: ``params_for(.a.b.c)`` falls back to the *nearest ancestor*
    override before the defaults. Useful for tuning a branch (e.g. all of
    ``.markets.equities``) without enumerating its subtopics.
    """

    default_params: TopicParams = field(default_factory=TopicParams)
    overrides: Mapping[Topic, TopicParams] = field(default_factory=dict)
    publisher_always_links: bool = True
    inherit_overrides: bool = False
    maintain_interval: float = 1.0
    bootstrap_timeout: float = 2.0
    bootstrap_ttl: int = 4
    ping_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.maintain_interval <= 0:
            raise ConfigError("maintain_interval must be > 0")
        if self.bootstrap_timeout <= 0:
            raise ConfigError("bootstrap_timeout must be > 0")
        if self.bootstrap_ttl < 1:
            raise ConfigError("bootstrap_ttl must be >= 1")
        if self.ping_timeout <= 0:
            raise ConfigError("ping_timeout must be > 0")

    def params_for(self, topic: Topic) -> TopicParams:
        """The parameters governing ``topic``'s group.

        Resolution: exact override, then (with ``inherit_overrides``) the
        nearest ancestor's override, then the defaults.
        """
        exact = self.overrides.get(topic)
        if exact is not None:
            return exact
        if self.inherit_overrides:
            for ancestor in topic.ancestors():
                inherited = self.overrides.get(ancestor)
                if inherited is not None:
                    return inherited
        return self.default_params

    def with_override(self, topic: Topic, params: TopicParams) -> "DaMulticastConfig":
        """A copy of this config with ``topic`` overridden (immutable style)."""
        merged = dict(self.overrides)
        merged[topic] = params
        return replace(self, overrides=merged)

    def with_defaults(self, params: TopicParams) -> "DaMulticastConfig":
        """A copy of this config with new default parameters."""
        return replace(self, default_params=params)
