"""The daMulticast process actor.

Glues together the protocol pieces for one process ``pl ∈ Π_Ti``:

* its two membership tables (topic table + supertopic table, §V-A.1),
* the dissemination logic (Fig. 5 RECEIVE / Fig. 7 DISSEMINATE),
* the bootstrap task (Fig. 4 FIND_SUPER_CONTACT),
* the maintenance task (Fig. 6 KEEP_TABLE_UPDATED),
* and, in dynamic mode, the underlying flat membership ([10]) with
  supertopic-table piggybacking (§V-A.2).

A process runs in one of two modes, matching the paper's two evaluation
settings: **static** (tables injected once at t=0, no background tasks —
the §VII simulator) and **dynamic** (the full protocol with join,
bootstrap, shuffling and repair).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Any, Callable, Sequence

from repro.core.bootstrap import FindSuperContact, handle_req_contact
from repro.core.dissemination import disseminate, should_deliver
from repro.core.events import Event, EventFactory, EventId
from repro.core.maintenance import KeepTableUpdated
from repro.core.params import DaMulticastConfig, TopicParams
from repro.core.tables import SuperTopicTable
from repro.errors import ProtocolError
from repro.membership.flat import FlatMembership, FlatMembershipConfig
from repro.membership.overlay import BootstrapOverlay
from repro.membership.view import PartialView, ProcessDescriptor
from repro.metrics.collector import DeliveryTracker
from repro.net.message import (
    AnsContact,
    EventMessage,
    JoinRequest,
    MembershipGossip,
    Message,
    NewProcessReply,
    NewProcessRequest,
    Ping,
    Pong,
    ReqContact,
)
from repro.net.network import Network
from repro.sim.clock import Clock
from repro.topics.topic import Topic

DeliveryCallback = Callable[["DaMulticastProcess", Event], None]


class GroupSizeCell:
    """A shared, mutable group-size counter.

    The system facade binds one cell per topic group to every member, so a
    join updates ``S_Ti`` for the whole group with one increment instead of
    an O(S) re-notification sweep per member (O(S²) per bootstrap wave).
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def __repr__(self) -> str:
        return f"GroupSizeCell({self.value})"


class DaMulticastProcess:
    """One process interested in exactly one topic (§III-A)."""

    def __init__(
        self,
        pid: int,
        topic: Topic,
        config: DaMulticastConfig,
        *,
        engine: Clock,
        network: Network,
        rng: random.Random,
        overlay: BootstrapOverlay | None = None,
        tracker: DeliveryTracker | None = None,
        delivery_callback: DeliveryCallback | None = None,
        dynamic: bool = True,
        membership_config: FlatMembershipConfig | None = None,
        group_size_hint: int | None = None,
    ):
        self.pid = pid
        self.topic = topic
        self.config = config
        self.engine = engine
        self.network = network
        self.rng = rng
        self.descriptor = ProcessDescriptor(pid, topic)
        self.dynamic = dynamic
        self._overlay = overlay
        self._tracker = tracker
        self._delivery_callback = delivery_callback
        self._group_size_hint = group_size_hint
        self._group_size_cell: GroupSizeCell | None = None
        self._expected_provider: Callable[[], int] | None = None

        params = config.params_for(topic)
        self.super_table = SuperTopicTable(params.z)
        self.seen: set[EventId] = set()
        self.seen_requests: set[tuple[int, int]] = set()
        self.delivered: list[Event] = []
        self.subscribed = False
        self._event_factory = EventFactory(pid)

        if dynamic:
            if membership_config is None:
                expected = group_size_hint if group_size_hint else 16
                membership_config = FlatMembershipConfig(
                    capacity=params.table_capacity(max(2, expected))
                )
            self.membership: FlatMembership | None = FlatMembership(
                self.descriptor,
                topic,
                membership_config,
                engine,
                rng,
                self.send,
                multicast=self.multicast,
                super_sample_provider=self._piggyback_super_sample,
                super_sample_consumer=self._merge_piggybacked_super,
            )
            self._static_view: PartialView | None = None
        else:
            self.membership = None
            self._static_view = PartialView(params.table_capacity(
                max(2, group_size_hint or 2)
            ))

        self.find_super_contact = FindSuperContact(
            self,
            timeout=config.bootstrap_timeout,
            ttl=config.bootstrap_ttl,
        )
        self.maintenance = KeepTableUpdated(
            self,
            interval=config.maintain_interval,
            ping_timeout=config.ping_timeout,
        )

    # ------------------------------------------------------------------
    # Configuration accessors
    # ------------------------------------------------------------------
    @property
    def params(self) -> TopicParams:
        """The parameters governing this process's topic group."""
        return self.config.params_for(self.topic)

    @property
    def group_size(self) -> int:
        """Best-known size ``S_Ti`` of this process's group.

        Injected by the system facade when global knowledge exists (static
        simulations); otherwise conservatively estimated from the topic
        table (self + known members).
        """
        if self._group_size_cell is not None:
            return max(1, self._group_size_cell.value)
        if self._group_size_hint is not None:
            return max(1, self._group_size_hint)
        return len(self.topic_table()) + 1

    def bind_group_size(self, cell: GroupSizeCell) -> None:
        """Share a live group-size counter with this process.

        The cell takes precedence over any point-in-time hint, so the
        facade can grow a group without re-notifying every member (the
        former O(S)-per-join sweep). An explicit :meth:`set_group_size`
        unbinds it again.
        """
        self._group_size_cell = cell

    def bind_expected_receivers(self, provider: Callable[[], int]) -> None:
        """Share a live intended-receiver counter with this process.

        ``provider()`` is consulted at publish time to record how many
        processes the protocol would deliver the event to over a perfect
        network — by inclusion (§III-B), subscribers of this topic *and*
        of every supertopic. The facade binds it from global knowledge;
        unbound processes fall back to :attr:`group_size` (their own
        group only). Feeds the graceful-degradation denominators in
        :mod:`repro.metrics.degradation`.
        """
        self._expected_provider = provider

    def set_group_size(self, size: int) -> None:
        """Update the group-size hint (used for ``p_sel`` and fan-out).

        In dynamic mode the membership table's capacity follows the [10]
        law ``(b+1)·log(S)``, so the view is resized to match — a group
        that grew from 10 to 1000 members needs (and gets) bigger tables.
        """
        self._group_size_cell = None
        self._group_size_hint = size
        if self.membership is not None:
            capacity = self.params.table_capacity(max(2, size))
            if capacity != self.membership.view.capacity:
                self.membership.view.set_capacity(capacity, self.rng)

    def topic_table(self) -> PartialView:
        """The topic table ``Table_Ti`` (whoever maintains it)."""
        if self.membership is not None:
            return self.membership.view
        assert self._static_view is not None
        return self._static_view

    def install_static_topic_table(self, view: PartialView) -> None:
        """Replace the frozen topic table (static mode only).

        Used by :meth:`repro.core.system.DaMulticastSystem.finalize_static_membership`,
        which knows the final group sizes and therefore the right capacity
        ``(b+1)·log(S)`` — unknown at process construction time.
        """
        if self.dynamic:
            raise ProtocolError(
                "static topic tables cannot be installed on a dynamic process"
            )
        self._static_view = view

    def neighborhood(self) -> list[ProcessDescriptor]:
        """The weakly-consistent global contacts (``neighborhood(pl)``)."""
        if self._overlay is None or self.pid not in self._overlay:
            return []
        return self._overlay.neighborhood(self.pid)

    # ------------------------------------------------------------------
    # Lifecycle (Fig. 5 SUBSCRIBE)
    # ------------------------------------------------------------------
    def subscribe(self, contact: ProcessDescriptor | None = None) -> None:
        """Join the group (Fig. 5 lines 1-4).

        Starts the underlying membership (dynamic mode), the link
        maintenance task, and — when no supercontact is known — the
        bootstrap search.
        """
        if self.subscribed:
            return
        self.subscribed = True
        if not self.dynamic:
            return  # static mode: tables are injected externally
        if self.membership is not None:
            self.membership.start(contact)
        self.maintenance.start()
        if self.super_table.is_empty and not self.topic.is_root:
            self.find_super_contact.start()

    def unsubscribe(self) -> None:
        """Stop all protocol activity for this process."""
        self.subscribed = False
        if self.membership is not None:
            self.membership.stop()
        self.maintenance.stop()
        self.find_super_contact.stop()

    # ------------------------------------------------------------------
    # Publishing (Fig. 7 lines 1-2)
    # ------------------------------------------------------------------
    def publish(self, payload: Any = None) -> Event:
        """Publish an event on this process's topic and disseminate it."""
        self.subscribe()  # Fig. 7 line 2: DISSEMINATE starts with SUBSCRIBE
        event = self._event_factory.create(self.topic, payload, self.engine.now)
        if self._tracker is not None:
            expected = (
                self._expected_provider()
                if self._expected_provider is not None
                else self.group_size
            )
            self._tracker.record_publish(event, self.pid, expected=expected)
        self.seen.add(event.event_id)
        self._deliver(event, hops=0)
        disseminate(
            self,
            event,
            force_link=self.config.publisher_always_links,
            arrival_hops=0,
        )
        return event

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Network entry point: dispatch one delivered message."""
        if isinstance(message, EventMessage):
            self._on_event(message)
        elif isinstance(message, ReqContact):
            handle_req_contact(self, message)
        elif isinstance(message, AnsContact):
            self.find_super_contact.on_answer(message)
        elif isinstance(message, NewProcessRequest):
            self.maintenance.on_new_process_request(message)
        elif isinstance(message, NewProcessReply):
            self.maintenance.on_new_process_reply(message)
        elif isinstance(message, Ping):
            self.send(message.sender, Pong(sender=self.pid, nonce=message.nonce))
        elif isinstance(message, Pong):
            self.super_table.record_proof_of_life(message.sender, self.engine.now)
        elif isinstance(message, (JoinRequest, MembershipGossip)):
            if self.membership is not None:
                self.membership.handle_message(message)
        else:
            raise ProtocolError(
                f"process {self.pid} cannot handle {type(message).__name__}"
            )

    def send(self, target: int, message: Message) -> None:
        """Send via the (unreliable) network."""
        self.network.send(self.pid, target, message)

    def multicast(self, targets: Sequence[int], message: Message) -> None:
        """Send one message to many targets via the batched fast path."""
        self.network.multicast(self.pid, targets, message)

    # ------------------------------------------------------------------
    # Event reception (Fig. 5 lines 5-10)
    # ------------------------------------------------------------------
    def _on_event(self, message: EventMessage) -> None:
        event = message.event
        if event.event_id in self.seen:
            return
        self.seen.add(event.event_id)
        self._deliver(event, hops=message.hops)
        disseminate(self, event, arrival_hops=message.hops)

    def _deliver(self, event: Event, hops: int = 0) -> None:
        # The paper's property 4: no parasite messages, ever. Make it a
        # hard invariant instead of trusting the routing.
        if not should_deliver(event, self.topic):
            raise ProtocolError(
                f"parasite delivery: process {self.pid} (topic "
                f"{self.topic.name}) got event of {event.topic.name}"
            )
        self.delivered.append(event)
        if self._tracker is not None:
            self._tracker.record_delivery(
                self.pid, event, self.engine.now, hops=hops
            )
        if self._delivery_callback is not None:
            self._delivery_callback(self, event)

    # ------------------------------------------------------------------
    # Supertopic-table piggybacking over membership gossip (§V-A.2)
    # ------------------------------------------------------------------
    def _piggyback_super_sample(self) -> tuple[ProcessDescriptor, ...]:
        return tuple(self.super_table.sample(2, self.rng))

    def _merge_piggybacked_super(
        self, descriptors: tuple[ProcessDescriptor, ...]
    ) -> None:
        by_topic: dict[Topic, list[ProcessDescriptor]] = defaultdict(list)
        for descriptor in descriptors:
            by_topic[descriptor.topic].append(descriptor)
        for topic, group in by_topic.items():
            self.super_table.adopt(topic, group, self.rng, own_topic=self.topic)
        # A fully initialized table makes the search redundant (Fig. 4:
        # "the aim of disseminating the supertopic table ... is to reduce
        # the number of messages during the initialization").
        if self.super_table.targets_direct_super_of(self.topic):
            self.find_super_contact.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_footprint(self) -> int:
        """Measured membership state: topic-table + supertopic-table entries.

        This is the quantity §VI-C bounds by ``ln(S)+c+z``; benchmarks
        report it measured, not assumed.
        """
        return len(self.topic_table()) + len(self.super_table)

    def __repr__(self) -> str:
        mode = "dynamic" if self.dynamic else "static"
        return (
            f"DaMulticastProcess(pid={self.pid}, topic={self.topic.name}, "
            f"{mode}, table={len(self.topic_table())}, "
            f"super={len(self.super_table)})"
        )
