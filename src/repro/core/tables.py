"""The two membership tables of a daMulticast process (§V-A.1, Fig. 3).

* The **topic table** ``Table_Ti`` holds processes interested in the same
  topic; it is populated by the underlying membership algorithm (dynamic
  mode: :class:`repro.membership.flat.FlatMembership`; static mode: drawn
  once by :mod:`repro.membership.static`).
* The **supertopic table** ``sTable_Ti`` (this module) has *constant* size
  ``z`` and holds processes of the nearest populated supertopic. It tracks
  which entries recently proved alive (Pongs), implements the paper's MERGE
  ("keeping the favorite superprocesses ... replacing the failed ones with
  the fresh ones", footnote 5) and CHECK ("returns the total number of
  processes that are alive in the supertopic table. The detection of alive
  processes is done via timeouts", footnote 7).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.membership.view import PartialView, ProcessDescriptor
from repro.topics.topic import Topic


class SuperTopicTable:
    """``sTable_Ti``: constant-size table of superprocesses.

    All entries share one ``target_topic`` — the supertopic group the table
    currently points at. Normally that is ``super(Ti)``; when nobody is
    interested in it, the table temporarily points at the nearest populated
    supertopic (§III-B) and the bootstrap task keeps searching for closer
    contacts, re-targeting the table when it finds some.
    """

    def __init__(self, z: int):
        self._view = PartialView(max(1, z))
        self.z = z
        self.target_topic: Topic | None = None
        self._last_proof: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------
    def adopt(
        self,
        topic: Topic,
        descriptors: Iterable[ProcessDescriptor],
        rng: random.Random,
        own_topic: Topic | None = None,
    ) -> bool:
        """Merge contacts of supertopic ``topic`` into the table.

        Re-targeting rule: a strictly *deeper* supertopic (closer to our own
        topic) evicts everything — those contacts are better links, because
        events climb one level at a time. Contacts of the current target
        merge normally; contacts of a shallower topic than the current
        target are ignored. Returns whether anything was admitted.

        ``own_topic`` guards against corrupted answers: candidates whose
        topic does not include it are rejected.
        """
        if own_topic is not None and not topic.is_strict_supertopic_of(own_topic):
            return False
        candidates = [d for d in descriptors if d.topic == topic]
        if not candidates:
            return False
        if self.target_topic is None or topic.depth > self.target_topic.depth:
            self._view.clear()
            self._last_proof.clear()
            self.target_topic = topic
        elif topic != self.target_topic:
            return False
        before = len(self._view)
        self._view.merge(candidates, rng)
        return len(self._view) > before or before == 0

    def merge_fresh(
        self,
        stale_pids: Iterable[int],
        fresh: Iterable[ProcessDescriptor],
    ) -> int:
        """The paper's MERGE: drop failed entries, admit fresh ones.

        Favorites (surviving entries) are kept; fresh descriptors only fill
        freed capacity. Descriptors of the wrong topic are rejected.
        """
        stale = list(stale_pids)
        matching = [
            d
            for d in fresh
            if self.target_topic is not None and d.topic == self.target_topic
        ]
        admitted = self._view.replace(stale, matching)
        for pid in stale:
            self._last_proof.pop(pid, None)
        return admitted

    def remove(self, pid: int) -> bool:
        """Drop one entry (e.g. a superprocess that stopped answering)."""
        self._last_proof.pop(pid, None)
        return self._view.remove(pid)

    def clear(self) -> None:
        """Empty the table and forget its target."""
        self._view.clear()
        self._last_proof.clear()
        self.target_topic = None

    # ------------------------------------------------------------------
    # Liveness bookkeeping (CHECK)
    # ------------------------------------------------------------------
    def record_proof_of_life(self, pid: int, now: float) -> None:
        """Note that ``pid`` demonstrably existed at ``now`` (Pong/any msg)."""
        if pid in self._view:
            self._last_proof[pid] = now

    def check(self, now: float, timeout: float) -> int:
        """The paper's CHECK: how many entries proved alive recently.

        An entry counts as alive when it produced a proof of life within
        ``timeout`` of ``now``. Entries never heard from are presumed dead
        (the conservative reading of "detection ... via timeouts").
        """
        alive = 0
        for pid in self._view.pids:
            proof = self._last_proof.get(pid)
            if proof is not None and now - proof <= timeout:
                alive += 1
        return alive

    def alive_pids(self, now: float, timeout: float) -> list[int]:
        """Entries with a recent proof of life (see :meth:`check`)."""
        return [
            pid
            for pid in self._view.pids
            if pid in self._last_proof and now - self._last_proof[pid] <= timeout
        ]

    def stale_pids(self, now: float, timeout: float) -> list[int]:
        """Entries without a recent proof of life."""
        alive = set(self.alive_pids(now, timeout))
        return [pid for pid in self._view.pids if pid not in alive]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether the table has no entries (triggers FIND_SUPER_CONTACT)."""
        return len(self._view) == 0

    def targets_direct_super_of(self, own_topic: Topic) -> bool:
        """Whether the table points at ``super(own_topic)`` itself."""
        return self.target_topic is not None and (
            own_topic.super_topic == self.target_topic
        )

    def descriptors(self) -> tuple[ProcessDescriptor, ...]:
        """All entries, oldest (favorite) first."""
        return self._view.descriptors()

    def sample(
        self, k: int, rng: random.Random
    ) -> list[ProcessDescriptor]:
        """Uniform sample of up to ``k`` entries (for piggybacking)."""
        return self._view.sample(k, rng)

    @property
    def pids(self) -> list[int]:
        """Entry pids, oldest first."""
        return self._view.pids

    def __len__(self) -> int:
        return len(self._view)

    def __contains__(self, pid: int) -> bool:
        return pid in self._view

    def __iter__(self):
        return iter(self._view)

    def __repr__(self) -> str:
        target = self.target_topic.name if self.target_topic else None
        return f"SuperTopicTable({len(self)}/{self.z} -> {target})"
