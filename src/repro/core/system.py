"""DaMulticastSystem — the user-facing facade.

Bundles a :class:`~repro.runtime.SimulationHarness` with process/group
management so applications, examples and experiments can write::

    system = DaMulticastSystem(seed=1, mode="dynamic")
    sensors = system.add_group(".plant.sensors", 50)
    system.run(until=30)                    # let membership converge
    event = system.publish(".plant.sensors", payload={"temp": 21.5})
    system.run(until=40)
    system.delivered_fraction(event, ".plant.sensors")

Two modes mirror the paper's two settings:

* ``mode="static"`` — the §VII simulator: membership tables are drawn once
  from global knowledge by :meth:`finalize_static_membership` and never
  change; no background tasks run, so a publication runs to quiescence.
* ``mode="dynamic"`` — the full protocol: joins go through the bootstrap
  overlay, FIND_SUPER_CONTACT floods, tables shuffle and self-repair.
"""

from __future__ import annotations

import functools
import hashlib
from typing import Any, Mapping

from repro.core.events import Event
from repro.core.params import DaMulticastConfig
from repro.core.process import (
    DaMulticastProcess,
    DeliveryCallback,
    GroupSizeCell,
)
from repro.errors import ConfigError, UnknownTopic
from repro.failures.model import FailureModel
from repro.membership.flat import FlatMembershipConfig
from repro.membership.overlay import BootstrapOverlay
from repro.membership.static import (
    GroupSampler,
    GroupTableBuilder,
    nearest_populated_super,
)
from repro.membership.view import ProcessDescriptor
from repro.metrics.delivery import all_received, delivered_fraction
from repro.net.latency import LatencyModel, ZERO_LATENCY
from repro.runtime import SimulationHarness
from repro.topics.hierarchy import TopicHierarchy
from repro.topics.topic import Topic


class DaMulticastSystem:
    """A complete daMulticast deployment on one simulation harness."""

    def __init__(
        self,
        *,
        config: DaMulticastConfig | None = None,
        seed: int = 0,
        p_success: float = 1.0,
        latency: LatencyModel = ZERO_LATENCY,
        failure_model: FailureModel | None = None,
        mode: str = "dynamic",
        overlay_degree: int = 5,
        trace: bool = False,
        delivery_callback: DeliveryCallback | None = None,
        harness: SimulationHarness | None = None,
    ):
        if mode not in ("static", "dynamic"):
            raise ConfigError(f"mode must be 'static' or 'dynamic', got {mode!r}")
        self.config = config or DaMulticastConfig()
        self.mode = mode
        # A pre-built harness (e.g. the live runtime's wall-clock one) is
        # adopted as-is; the seed/p_success/latency/... knobs then belong
        # to whoever built it.
        self.harness = harness if harness is not None else SimulationHarness(
            seed=seed,
            p_success=p_success,
            latency=latency,
            failure_model=failure_model,
            trace=trace,
        )
        self.hierarchy = TopicHierarchy()
        self.overlay = (
            BootstrapOverlay(overlay_degree) if mode == "dynamic" else None
        )
        self._groups: dict[Topic, list[DaMulticastProcess]] = {}
        self._processes: dict[int, DaMulticastProcess] = {}
        #: one live size counter per group, shared with every member
        self._group_size_cells: dict[Topic, GroupSizeCell] = {}
        #: last (b+1)·log S capacity pushed to a group's dynamic views
        self._group_capacities: dict[Topic, int] = {}
        self._delivery_callback = delivery_callback
        self._static_finalized = False

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The discrete-event engine."""
        return self.harness.engine

    @property
    def network(self):
        """The unreliable network."""
        return self.harness.network

    @property
    def stats(self):
        """Network statistics (message counts per kind/group)."""
        return self.harness.stats

    @property
    def tracker(self):
        """The delivery tracker (who received which event)."""
        return self.harness.tracker

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.harness.now

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Advance the simulation (see :meth:`repro.sim.engine.Engine.run`)."""
        return self.harness.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run to quiescence (static mode; dynamic mode never idles)."""
        return self.harness.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_process(
        self,
        topic: Topic | str,
        *,
        subscribe: bool = True,
        membership_config: FlatMembershipConfig | None = None,
    ) -> DaMulticastProcess:
        """Create one process interested in ``topic`` and wire it up.

        In dynamic mode the process immediately joins: it gets overlay
        contacts, a same-group membership contact when one exists, and its
        background tasks start. In static mode it stays inert until
        :meth:`finalize_static_membership`.
        """
        resolved = self.hierarchy.add(topic)
        pid = self.harness.next_pid()
        process = DaMulticastProcess(
            pid,
            resolved,
            self.config,
            engine=self.engine,
            network=self.network,
            rng=self.harness.rngs.stream(f"process/{pid}"),
            overlay=self.overlay,
            tracker=self.tracker,
            delivery_callback=self._delivery_callback,
            dynamic=(self.mode == "dynamic"),
            membership_config=membership_config,
            group_size_hint=None,
        )
        self.network.register(process)
        group = self._groups.setdefault(resolved, [])
        group.append(process)
        self._processes[pid] = process
        cell = self._group_size_cells.get(resolved)
        if cell is None:
            cell = self._group_size_cells[resolved] = GroupSizeCell()
        cell.value = len(group)
        process.bind_group_size(cell)
        process.bind_expected_receivers(
            functools.partial(self._interested_count, resolved)
        )
        self._sync_membership_capacity(resolved, group, cell.value, process)

        if self.mode == "dynamic":
            assert self.overlay is not None
            self.overlay.add_process(
                process.descriptor, self.harness.rngs.stream("overlay")
            )
            if subscribe:
                contact = self._membership_contact_for(process)
                process.subscribe(contact)
        elif subscribe:
            process.subscribe()
        return process

    def add_group(
        self,
        topic: Topic | str,
        count: int,
        *,
        subscribe: bool = True,
    ) -> list[DaMulticastProcess]:
        """Create ``count`` processes interested in ``topic``."""
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        resolved = self.hierarchy.add(topic)  # parse/register once, not per process
        return [
            self.add_process(resolved, subscribe=subscribe)
            for _ in range(count)
        ]

    def _membership_contact_for(
        self, process: DaMulticastProcess
    ) -> ProcessDescriptor | None:
        """A random existing member of the same group, if any."""
        peers = [
            p for p in self._groups[process.topic] if p.pid != process.pid
        ]
        if not peers:
            return None
        chosen = self.harness.rngs.stream("contacts").choice(peers)
        return chosen.descriptor

    def _sync_membership_capacity(
        self,
        topic: Topic,
        members: list[DaMulticastProcess],
        size: int,
        newcomer: DaMulticastProcess,
    ) -> None:
        """Keep dynamic-mode view capacities on the ``(b+1)·log S`` law.

        Replaces the former per-join sweep that re-notified every member
        of the new group size (O(S) per join, O(S²) per bootstrap wave):
        the shared :class:`GroupSizeCell` already publishes the size, so
        only view capacities remain to sync — the newcomer always (its
        view was sized from a default hint), everyone else only when the
        group's table capacity actually changed, which happens O(log S)
        times over a group's growth. Capacities only grow here (group
        lists are append-only), so no eviction draw is ever consumed and
        same-seed trajectories are unchanged.
        """
        if self.mode != "dynamic":
            return
        capacity = self.config.params_for(topic).table_capacity(max(2, size))
        previous = self._group_capacities.get(topic)
        self._group_capacities[topic] = capacity
        targets = members if previous != capacity else (newcomer,)
        for member in targets:
            membership = member.membership
            if membership is not None and membership.view.capacity != capacity:
                membership.view.set_capacity(capacity, member.rng)

    # ------------------------------------------------------------------
    # Static-mode membership injection (§VII)
    # ------------------------------------------------------------------
    def finalize_static_membership(self) -> None:
        """Draw all membership tables once, from global knowledge.

        Reproduces the paper's simulation setting: each topic table is a
        uniform sample of ``(b+1)·log(S)`` group members, each supertopic
        table a uniform sample of ``z`` members of the nearest populated
        supergroup. Tables never change afterwards.
        """
        if self.mode != "static":
            raise ConfigError("finalize_static_membership requires mode='static'")
        rng = self.harness.rngs.stream("static-membership")
        population: dict[Topic, list[ProcessDescriptor]] = {
            topic: [p.descriptor for p in members]
            for topic, members in self._groups.items()
        }
        # repro-lint: allow[DET003]: _groups preserves deterministic subscription order; sorting would change the membership draw sequence vs goldens
        for topic, members in self._groups.items():
            params = self.config.params_for(topic)
            capacity = params.table_capacity(len(members))
            z = params.z
            super_topic = nearest_populated_super(topic, population)
            super_members = population.get(super_topic, []) if super_topic else []
            # One shared build context per group: the descriptor list is
            # materialised once and every member draws O(capacity) index
            # samples through it (see membership/static.py), instead of
            # rebuilding an O(S) exclusion list per member.
            builder = GroupTableBuilder(population[topic])
            super_sampler = (
                GroupSampler(super_members) if super_members else None
            )
            for index, process in enumerate(members):
                process.install_static_topic_table(
                    builder.table_at(index, capacity, rng)
                )
                if super_topic is not None and super_sampler is not None:
                    sampled = super_sampler.sample(z, rng)
                    process.super_table.clear()
                    process.super_table.adopt(
                        super_topic, sampled, rng, own_topic=topic
                    )
        self._static_finalized = True

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        topic: Topic | str,
        payload: Any = None,
        *,
        publisher: DaMulticastProcess | None = None,
    ) -> Event:
        """Publish an event on ``topic``.

        ``publisher`` defaults to a uniformly chosen *alive* member of the
        topic's group (the §VII setting publishes from an alive process).
        """
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        if publisher is None:
            members = self._groups.get(resolved, [])
            alive = [p for p in members if self.harness.is_alive(p.pid)]
            if not alive:
                raise UnknownTopic(
                    f"no alive process interested in {resolved.name} to publish from"
                )
            publisher = self.harness.rngs.stream("publish").choice(alive)
        if self.mode == "static" and not self._static_finalized:
            raise ConfigError(
                "static mode: call finalize_static_membership() before publishing"
            )
        return publisher.publish(payload)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processes(self) -> list[DaMulticastProcess]:
        """All processes, in creation order."""
        return [self._processes[pid] for pid in sorted(self._processes)]

    def process(self, pid: int) -> DaMulticastProcess:
        """Process lookup by id."""
        try:
            return self._processes[pid]
        except KeyError:
            raise UnknownTopic(f"no process with pid {pid}") from None

    def group(self, topic: Topic | str) -> list[DaMulticastProcess]:
        """All processes interested in exactly ``topic``."""
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        return list(self._groups.get(resolved, []))

    def group_pids(self, topic: Topic | str) -> list[int]:
        """Pids of :meth:`group`."""
        return [p.pid for p in self.group(topic)]

    def _interested_count(self, topic: Topic) -> int:
        """Processes whose subscription *includes* events of ``topic`` —
        its own group plus every supergroup (inclusion, §III-B): the
        intended receivers of a ``topic`` event over a perfect network.
        Live count (consulted at publish time via
        :meth:`DaMulticastProcess.bind_expected_receivers`)."""
        return sum(
            len(members)
            for t, members in self._groups.items()
            if t.includes(topic)
        )

    def interests(self) -> Mapping[int, Topic]:
        """pid → subscribed topic, for parasite accounting."""
        return {pid: p.topic for pid, p in self._processes.items()}

    def topic_of(self, pid: int) -> Topic | None:
        """``pid``'s topic, or None for unknown pids (e.g. not yet joined).

        Link classifiers (per-link-class latency) use this instead of
        :meth:`process` because they are consulted for every transmission,
        including ones racing a staggered join.
        """
        process = self._processes.get(pid)
        return None if process is None else process.topic

    def topics(self) -> list[Topic]:
        """All topics with at least one interested process."""
        return sorted(self._groups)

    def delivered_fraction(
        self,
        event: Event,
        topic: Topic | str,
        *,
        alive_only: bool = True,
    ) -> float:
        """Figs. 10/11 quantity: fraction of the group that delivered."""
        pids = self.group_pids(topic)
        is_alive = self.harness.is_alive if alive_only else (lambda pid: True)
        return delivered_fraction(self.tracker, event.event_id, pids, is_alive)

    def all_received(
        self,
        event: Event,
        topic: Topic | str,
        *,
        alive_only: bool = True,
    ) -> bool:
        """§VI-D reliability indicator for one run."""
        pids = self.group_pids(topic)
        is_alive = self.harness.is_alive if alive_only else (lambda pid: True)
        return all_received(self.tracker, event.event_id, pids, is_alive)

    def memory_footprints(self, topic: Topic | str) -> list[int]:
        """Measured membership state per process of a group (§VI-C)."""
        return [p.memory_footprint for p in self.group(topic)]

    def construction_digest(self) -> str:
        """SHA-256 over every process's table contents, in pid order.

        Byte-compatible with the loop that produced the S=500 golden in
        tests/test_golden_static.py, and with
        :meth:`repro.core.columnar.ColumnarStaticSystem.construction_digest`
        — the CI gate asserting the columnar backend reproduces the object
        backend's membership bit-for-bit compares these two strings.
        """
        digest = hashlib.sha256()
        for process in self.processes:
            digest.update(b"T")
            digest.update(
                ",".join(map(str, process.topic_table().pids)).encode()
            )
            digest.update(b"S")
            digest.update(
                ",".join(map(str, process.super_table.pids)).encode()
            )
            digest.update(str(process.super_table.target_topic).encode())
        return digest.hexdigest()

    def __repr__(self) -> str:
        return (
            f"DaMulticastSystem(mode={self.mode!r}, "
            f"processes={len(self._processes)}, topics={len(self._groups)})"
        )
