"""Event dissemination — Fig. 7's DISSEMINATE and Fig. 5's RECEIVE.

A process disseminating an event ``e_Ti``:

1. **Inter-group hand-off** — with probability ``p_sel = g/S`` it elects
   itself as a link and sends the event to each supertopic-table entry with
   probability ``p_a = a/z`` (so on average ``g`` processes per group act
   as links, each reaching ``a`` superprocesses). The publisher itself
   always acts as a link when ``publisher_always_links`` is set (§IV-C:
   "p1 sends its events to at least one process from its super topic
   table"). Note the paper's pseudo-code writes ``RAND() ≥ p_sel``; the
   analysis (§VI-B) makes clear the election happens *with probability*
   ``p_sel``, which is what we implement (DESIGN.md, note 1).
2. **Intra-group gossip** — it forwards the event to ``log(S)+c`` distinct
   topic-table members (sampling from ``Table − Ω``, Fig. 7 lines 8–14).

RECEIVE (Fig. 5): on the *first* reception of an event, deliver it to the
application and disseminate it; later copies are ignored.

The functions here are pure protocol logic over a narrow
:class:`DisseminationPeer` interface, so the same code drives the static
(paper-simulation) and dynamic (full-protocol) modes.
"""

from __future__ import annotations

import random
from itertools import groupby
from typing import Protocol, Sequence

from repro.core.events import Event
from repro.core.params import TopicParams
from repro.membership.view import PartialView
from repro.net.message import EventMessage, Message, Scope
from repro.core.tables import SuperTopicTable
from repro.topics.topic import Topic


class DisseminationPeer(Protocol):
    """What dissemination needs to know about the process running it."""

    pid: int
    topic: Topic

    @property
    def rng(self) -> random.Random: ...  # pragma: no cover - protocol

    @property
    def params(self) -> TopicParams: ...  # pragma: no cover - protocol

    @property
    def group_size(self) -> int: ...  # pragma: no cover - protocol

    def topic_table(self) -> PartialView: ...  # pragma: no cover - protocol

    @property
    def super_table(self) -> SuperTopicTable: ...  # pragma: no cover - protocol

    def send(self, target: int, message: Message) -> None: ...  # pragma: no cover

    def multicast(
        self, targets: Sequence[int], message: Message
    ) -> None: ...  # pragma: no cover


def disseminate(
    peer: DisseminationPeer,
    event: Event,
    *,
    force_link: bool = False,
    arrival_hops: int = 0,
) -> tuple[int, int]:
    """Run Fig. 7's DISSEMINATE on ``peer`` for ``event``.

    ``force_link`` bypasses the ``p_sel`` election (used for the publisher
    when ``publisher_always_links`` is configured). ``arrival_hops`` is the
    transmission count at which ``peer`` obtained the event (0 for the
    publisher); forwarded copies carry ``arrival_hops + 1``. Returns
    ``(intra_sent, inter_sent)`` message counts for diagnostics.

    Both fan-outs are issued as batched multicasts: targets are elected
    first (same per-target RNG draws, in table order, as the historical
    one-send-per-target loop) and each scope's target list then goes out
    as one :meth:`DisseminationPeer.multicast` call sharing one message.
    """
    params = peer.params
    inter_sent = 0
    next_hops = arrival_hops + 1

    # (1) Hand the event up to the supergroup (Fig. 7 lines 3-7).
    super_table = peer.super_table
    if not super_table.is_empty:
        elected = force_link or peer.rng.random() < params.p_sel(peer.group_size)
        if elected:
            random_draw = peer.rng.random
            p_a = params.p_a
            chosen = [
                d for d in super_table.descriptors() if random_draw() < p_a
            ]
            # All entries normally share the table's target topic; group
            # consecutive runs so mid-retarget mixtures still get one
            # message (and one Figs. 9 accounting scope) per supertopic.
            for super_topic, run in groupby(chosen, key=lambda d: d.topic):
                batch = [d.pid for d in run]
                peer.multicast(
                    batch,
                    EventMessage(
                        sender=peer.pid,
                        event=event,
                        scope=Scope("inter", peer.topic, super_topic),
                        hops=next_hops,
                    ),
                )
                inter_sent += len(batch)

    # (2) Gossip inside our own group (Fig. 7 lines 8-14).
    fanout = params.fanout(peer.group_size)
    targets = peer.topic_table().sample(fanout, peer.rng, exclude=(peer.pid,))
    if targets:
        peer.multicast(
            [d.pid for d in targets],
            EventMessage(
                sender=peer.pid,
                event=event,
                scope=Scope("intra", peer.topic),
                hops=next_hops,
            ),
        )
    return len(targets), inter_sent


def should_deliver(event: Event, topic: Topic) -> bool:
    """Whether ``event`` is relevant to a subscriber of ``topic``.

    True iff ``topic`` includes the event's publication topic. daMulticast
    only ever routes events to interested processes, so for this protocol
    the predicate always holds — it is asserted at delivery time to *prove*
    the paper's no-parasite-messages claim (§I, property 4) rather than
    assume it.
    """
    return event.is_of_topic(topic)
