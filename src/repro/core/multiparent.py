"""Multiple supertopics — the extension sketched in §VIII.

"In this paper we tackled the case where a topic has only one direct
supertopic, mainly for presentation simplicity. Multiple supertopics
(i.e., multiple inheritance) could be easily supported by either adapting
the membership algorithm or by adding a supertopic table for each
supertopic."

This module implements the second option on a :class:`~repro.topics.
hierarchy.TopicDag`: each process keeps one
:class:`~repro.core.tables.SuperTopicTable` *per direct supertopic* of its
topic, and dissemination runs the Fig. 7 inter-group hand-off once per
table. Deduplication (Fig. 5) keeps reconverging paths (diamonds in the
DAG) from double-delivering. Inclusion — and therefore the no-parasite
invariant — follows DAG reachability instead of dotted-path prefixes.

The extension is provided in the paper's §VII style (static membership):
tables are drawn from global knowledge by
:meth:`MultiParentSystem.finalize_static_membership`.
"""

from __future__ import annotations

import functools
from itertools import groupby
from typing import Any

from repro.core.events import Event, EventFactory, EventId
from repro.core.params import DaMulticastConfig
from repro.core.tables import SuperTopicTable
from repro.errors import ConfigError, ProtocolError, UnknownTopic
from repro.failures.model import FailureModel
from repro.membership.static import GroupSampler, GroupTableBuilder
from repro.membership.view import PartialView, ProcessDescriptor
from repro.metrics.delivery import delivered_fraction
from repro.net.latency import LatencyModel, ZERO_LATENCY
from repro.net.message import EventMessage, Message, Scope
from repro.runtime import SimulationHarness
from repro.topics.hierarchy import TopicDag
from repro.topics.topic import Topic


class MultiParentProcess:
    """A daMulticast process whose topic may have several supertopics."""

    def __init__(
        self,
        pid: int,
        topic: Topic,
        config: DaMulticastConfig,
        dag: TopicDag,
        harness: SimulationHarness,
    ):
        self.pid = pid
        self.topic = topic
        self.config = config
        self.dag = dag
        self._harness = harness
        self.rng = harness.rngs.stream(f"mp-process/{pid}")
        self.descriptor = ProcessDescriptor(pid, topic)
        params = config.params_for(topic)
        self.topic_view = PartialView(1)  # replaced at finalize time
        #: one supertopic table per direct supertopic (§VIII)
        self.super_tables: dict[Topic, SuperTopicTable] = {}
        self.group_size = 1
        #: set by the system facade: intended receivers of our events over
        #: a perfect network (our group + every DAG-ancestor group)
        self.expected_provider: Any = None
        self.seen: set[EventId] = set()
        self.delivered: list[Event] = []
        self._params = params
        self._event_factory = EventFactory(pid)

    # ------------------------------------------------------------------
    # Inclusion on the DAG
    # ------------------------------------------------------------------
    def interested_in(self, event: Event) -> bool:
        """DAG-aware inclusion: our topic is the event's topic or one of
        its (multi-inheritance) ancestors."""
        return event.topic == self.topic or self.dag.is_ancestor(
            self.topic, event.topic
        )

    # ------------------------------------------------------------------
    # Dissemination (Fig. 7, once per supertopic table)
    # ------------------------------------------------------------------
    def publish(self, payload: Any = None) -> Event:
        """Publish an event of our topic and disseminate it."""
        event = self._event_factory.create(
            self.topic, payload, self._harness.now
        )
        expected = (
            self.expected_provider()
            if self.expected_provider is not None
            else self.group_size
        )
        self._harness.tracker.record_publish(
            event, self.pid, expected=expected
        )
        self.seen.add(event.event_id)
        self._deliver(event)
        self._disseminate(
            event, force_link=self.config.publisher_always_links
        )
        return event

    def handle_message(self, message: Message) -> None:
        """Fig. 5 RECEIVE: deliver + disseminate on first reception."""
        if not isinstance(message, EventMessage):
            raise ProtocolError(
                f"multi-parent process {self.pid} got "
                f"{type(message).__name__}"
            )
        event = message.event
        if event.event_id in self.seen:
            return
        self.seen.add(event.event_id)
        self._deliver(event)
        self._disseminate(event)

    def _disseminate(self, event: Event, force_link: bool = False) -> None:
        params = self._params
        # (1) hand the event to EVERY supergroup, one election per table;
        # each table's elected contacts go out as one batched multicast.
        # repro-lint: allow[DET003]: super_tables is built in fixed ancestor order at construction; sorting would permute the draw sequence and break golden digests
        for super_topic, table in self.super_tables.items():
            if table.is_empty:
                continue
            elected = (
                force_link
                or self.rng.random() < params.p_sel(self.group_size)
            )
            if not elected:
                continue
            for scope_topic, run in groupby(
                (
                    d
                    for d in table.descriptors()
                    if self.rng.random() < params.p_a
                ),
                key=lambda d: d.topic,
            ):
                self._multicast(
                    [descriptor.pid for descriptor in run],
                    EventMessage(
                        sender=self.pid,
                        event=event,
                        scope=Scope("inter", self.topic, scope_topic),
                    ),
                )
        # (2) gossip inside our own group.
        fanout = params.fanout(self.group_size)
        targets = self.topic_view.sample(fanout, self.rng, exclude=(self.pid,))
        if targets:
            self._multicast(
                [descriptor.pid for descriptor in targets],
                EventMessage(
                    sender=self.pid,
                    event=event,
                    scope=Scope("intra", self.topic),
                ),
            )

    def _deliver(self, event: Event) -> None:
        if not self.interested_in(event):
            raise ProtocolError(
                f"parasite delivery: {self.topic.name} process got event "
                f"of {event.topic.name}"
            )
        self.delivered.append(event)
        self._harness.tracker.record_delivery(
            self.pid, event, self._harness.now
        )

    def _send(self, target: int, message: Message) -> None:
        self._harness.network.send(self.pid, target, message)

    def _multicast(self, targets: list[int], message: Message) -> None:
        self._harness.network.multicast(self.pid, targets, message)

    @property
    def memory_footprint(self) -> int:
        """Topic-table entries plus all supertopic tables (§VIII: one
        constant-size table per direct supertopic)."""
        return len(self.topic_view) + sum(
            len(table) for table in self.super_tables.values()
        )

    def __repr__(self) -> str:
        return (
            f"MultiParentProcess(pid={self.pid}, topic={self.topic.name}, "
            f"supers={len(self.super_tables)})"
        )


class MultiParentSystem:
    """A static-mode daMulticast deployment over a topic DAG."""

    def __init__(
        self,
        dag: TopicDag,
        *,
        config: DaMulticastConfig | None = None,
        seed: int = 0,
        p_success: float = 1.0,
        latency: LatencyModel = ZERO_LATENCY,
        failure_model: FailureModel | None = None,
    ):
        self.dag = dag
        self.config = config or DaMulticastConfig()
        self.harness = SimulationHarness(
            seed=seed,
            p_success=p_success,
            latency=latency,
            failure_model=failure_model,
        )
        self._groups: dict[Topic, list[MultiParentProcess]] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_process(self, topic: Topic | str) -> MultiParentProcess:
        """Create one process interested in ``topic`` (must be in the DAG)."""
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        if resolved not in self.dag:
            raise UnknownTopic(f"{resolved.name} is not in the DAG")
        process = MultiParentProcess(
            self.harness.next_pid(),
            resolved,
            self.config,
            self.dag,
            self.harness,
        )
        self.harness.network.register(process)
        self._groups.setdefault(resolved, []).append(process)
        process.expected_provider = functools.partial(
            self._interested_count, resolved
        )
        return process

    def _interested_count(self, topic: Topic) -> int:
        """Intended receivers of a ``topic`` event: members of ``topic``'s
        group and of every DAG-ancestor group (multi-parent inclusion)."""
        return sum(
            len(members)
            for t, members in self._groups.items()
            if t == topic or self.dag.is_ancestor(t, topic)
        )

    def add_group(self, topic: Topic | str, count: int) -> list[MultiParentProcess]:
        """Create ``count`` processes interested in ``topic``."""
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        return [self.add_process(topic) for _ in range(count)]

    # ------------------------------------------------------------------
    # Static membership over the DAG
    # ------------------------------------------------------------------
    def _nearest_populated_up(self, start: Topic) -> Topic | None:
        """BFS upward from ``start`` for the nearest populated ancestor."""
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: list[Topic] = []
            for node in frontier:
                members = self._groups.get(node)
                if members:
                    return node
                for parent in self.dag.parents_of(node):
                    if parent not in seen:
                        seen.add(parent)
                        next_frontier.append(parent)
            frontier = next_frontier
        return None

    def finalize_static_membership(self) -> None:
        """Draw the topic table and one supertopic table per parent.

        One shared :class:`GroupTableBuilder` per group and one
        :class:`GroupSampler` per populated ancestor target replace the
        former per-member exclusion-list and supergroup-copy rebuilds
        (O(S²) per group), with draw-identical results.
        """
        rng = self.harness.rngs.stream("static-membership")
        # repro-lint: allow[DET003]: _groups preserves deterministic subscription order; sorting would change the membership draw sequence vs goldens
        for topic, members in self._groups.items():
            params = self.config.params_for(topic)
            size = len(members)
            capacity = params.table_capacity(size)
            descriptors = [p.descriptor for p in members]
            builder = GroupTableBuilder(descriptors)
            parent_samplers: list[tuple[Topic, Topic, GroupSampler]] = []
            for parent in self.dag.parents_of(topic):
                target = self._nearest_populated_up(parent)
                if target is None:
                    continue
                parent_samplers.append(
                    (
                        parent,
                        target,
                        GroupSampler(
                            [p.descriptor for p in self._groups[target]]
                        ),
                    )
                )
            for index, process in enumerate(members):
                process.topic_view = builder.table_at(index, capacity, rng)
                process.group_size = size
                process.super_tables = {}
                for parent, target, sampler in parent_samplers:
                    table = SuperTopicTable(params.z)
                    sampled = sampler.sample(params.z, rng)
                    # own_topic check is path-based; DAG adoption validates
                    # via the DAG instead, so pass own_topic=None.
                    table.adopt(target, sampled, rng)
                    process.super_tables[parent] = table
        self._finalized = True

    # ------------------------------------------------------------------
    # Publishing & queries
    # ------------------------------------------------------------------
    def publish(
        self,
        topic: Topic | str,
        payload: Any = None,
        *,
        publisher: MultiParentProcess | None = None,
    ) -> Event:
        """Publish from a (given or random alive) member of ``topic``."""
        if not self._finalized:
            raise ConfigError("call finalize_static_membership() first")
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        if publisher is None:
            members = [
                p
                for p in self._groups.get(resolved, [])
                if self.harness.is_alive(p.pid)
            ]
            if not members:
                raise UnknownTopic(
                    f"no alive process interested in {resolved.name}"
                )
            publisher = self.harness.rngs.stream("publish").choice(members)
        return publisher.publish(payload)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run the simulation to quiescence."""
        return self.harness.run_until_idle(max_events=max_events)

    def group(self, topic: Topic | str) -> list[MultiParentProcess]:
        """Processes interested in exactly ``topic``."""
        resolved = Topic.parse(topic) if isinstance(topic, str) else topic
        return list(self._groups.get(resolved, []))

    def delivered_fraction(self, event: Event, topic: Topic | str) -> float:
        """Fraction of ``topic``'s group that delivered ``event``."""
        pids = [p.pid for p in self.group(topic)]
        return delivered_fraction(
            self.harness.tracker, event.event_id, pids
        )

    @property
    def stats(self):
        """Network statistics."""
        return self.harness.stats
