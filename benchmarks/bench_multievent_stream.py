"""Steady-state stream bench — stability beyond the paper's single shot.

The paper's figures publish one event per run; a pub/sub system serves
streams. This bench asserts the properties that make daMulticast safe to
run continuously: per-event cost independent of the arrival rate
(infect-and-die holds no inter-event state), no delivery degradation over
the stream, and zero parasites for any topic mix.
"""

from repro.experiments.multievent import stream_table
from repro.workloads import PaperScenario

SCENARIO = PaperScenario(sizes=(5, 25, 120), p_succ=0.9)


def test_multievent_stream_cost_flat(benchmark, emit, sweep_executor):
    # Single publication level: per-event cost must be flat in the rate.
    table = benchmark.pedantic(
        lambda: stream_table(
            rates=(0.1, 0.3, 0.6),
            runs=3,
            scenario=SCENARIO,
            publish_levels=(2,),
            executor=sweep_executor,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "multievent_stream")

    rows = table.as_dicts()
    costs = [row["messages_per_event"] for row in rows]
    assert max(costs) / min(costs) <= 1.2
    for row in rows:
        assert row["mean_delivery"] >= 0.95
        assert row["min_delivery"] >= 0.7
        assert row["parasites"] == 0.0


def test_multievent_mixed_topics_no_parasites(benchmark, emit, sweep_executor):
    # Mixed levels: costs differ per topic, but parasites stay zero and
    # delivery stays high for every event in the stream.
    table = benchmark.pedantic(
        lambda: stream_table(
            rates=(0.4,),
            runs=3,
            scenario=SCENARIO,
            publish_levels=(1, 2),
            executor=sweep_executor,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "multievent_stream_mixed")
    row = table.as_dicts()[0]
    assert row["parasites"] == 0.0
    assert row["mean_delivery"] >= 0.95
