"""Appendix — the tuning equivalences and z-bounds (eqs. 14-30).

For each baseline: sweep the baseline's gossip constant c, report the
feasibility window, the matching c1 and the z-bound; verify numerically
that plugging c1 into the (average-case) daMulticast reliability exactly
reproduces the baseline's reliability — i.e. the paper's algebra balances.
"""

import math

from repro.analysis import (
    atomic_gossip_reliability,
    match_broadcast,
    match_hierarchical,
    match_multicast,
)
from repro.metrics.report import Table

PIT = 0.9995
T = 3
C_GRID = (0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 8.0)


def build_table():
    table = Table(
        f"Appendix tuning bounds (pit={PIT}, t={T}, S_T=1000, n=1110, N=10)",
        ["baseline", "c", "feasible", "c1", "z_bound", "equality_error"],
        precision=4,
    )
    for c in C_GRID:
        for result, target in (
            (
                match_multicast(c, PIT, t=T, s_t=1000),
                atomic_gossip_reliability(c) ** T,
            ),
            (
                match_broadcast(c, PIT, t=T, n=1110, s_t=1000),
                atomic_gossip_reliability(c),
            ),
            (
                match_hierarchical(c, PIT, t=T, n_clusters=10),
                math.exp(-10 * math.exp(-c) - math.exp(-c)),
            ),
        ):
            if result.feasible:
                ours = (atomic_gossip_reliability(result.c1) * PIT) ** T
                error = abs(ours - target)
            else:
                error = float("nan")
            table.add_row(
                result.baseline,
                c,
                result.feasible,
                "-" if result.c1 is None else round(result.c1, 4),
                "-" if result.z_bound is None else round(result.z_bound, 4),
                error,
            )
    return table


def test_tuning_bounds(benchmark, emit):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit(table, "appendix_tuning_bounds")

    rows = table.as_dicts()
    feasible_rows = [r for r in rows if r["feasible"]]
    assert feasible_rows, "some (baseline, c) pairs must be feasible"

    # The algebra balances: equality error is numerically zero wherever
    # the match is feasible.
    for row in feasible_rows:
        assert row["equality_error"] < 1e-9, row

    # Structure of the windows: multicast/broadcast matches become
    # infeasible for large c (can't out-gossip a lossless baseline with a
    # lossy inter-group hop). With pit=0.9995 the multicast window closes
    # at -ln(-ln(pit)) ~= 7.6: c=7 is still feasible, c=8 is not.
    multicast_7 = [
        r for r in rows if r["baseline"] == "multicast" and r["c"] == 7.0
    ][0]
    assert multicast_7["feasible"]
    multicast_8 = [
        r for r in rows if r["baseline"] == "multicast" and r["c"] == 8.0
    ][0]
    assert not multicast_8["feasible"]
    # ...while the hierarchical window also excludes very small c (its
    # N·e^{-c} penalty makes it easy to match only in a middle band).
    hier_small_c = [
        r for r in rows if r["baseline"] == "hierarchical" and r["c"] == 0.5
    ][0]
    assert not hier_small_c["feasible"]

    # The paper scenario's z=3 fits under the multicast z-bound.
    multicast_ok = [
        r
        for r in rows
        if r["baseline"] == "multicast" and r["feasible"]
    ]
    assert any(r["z_bound"] >= 3 for r in multicast_ok)
