"""Fig. 9 — number of inter-group events (T2→T1, T1→T0) vs alive fraction.

Paper (§VII-B): "even if almost half of the processes fail, at least one
event is sent to the group of processes interested in the supertopic. This
is enough for disseminating the event to the upper groups." The expected
count is ≈ g·a·coverage ≈ 5 at full aliveness (plus the publisher's own
guaranteed link), matching the figure's ~4.5 peak.
"""

from repro.experiments import DEFAULT_GRID, run_figure9
from repro.workloads import PaperScenario

SCENARIO = PaperScenario()
RUNS = 5


def test_figure9(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: run_figure9(
            grid=DEFAULT_GRID, runs=RUNS, scenario=SCENARIO, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig09_intergroup")

    rows = {row["alive_fraction"]: row for row in table.as_dicts()}
    full = rows[1.0]

    # Peak ≈ g·a (+ publisher's forced link): the paper's ~4.5 region.
    assert 3.0 <= full["T2->T1"] <= 8.0
    assert 3.0 <= full["T1->T0"] <= 8.0

    # The paper's headline: at ~50% aliveness, on average >= 1 event still
    # crosses T2 -> T1.
    assert rows[0.5]["T2->T1"] >= 1.0

    # Inter-group traffic vanishes as everyone dies and is tiny overall
    # (constant in S — that is the whole point of p_sel = g/S).
    assert rows[0.0]["T1->T0"] == 0.0
    for row in table.as_dicts():
        assert row["T2->T1"] <= 12.0
