"""Ablations — the reliability/message-complexity trade-off knobs.

§VII's closing remark: "To achieve better reliability, we can easily
adjust z_Ti, p_a^Ti and g_Ti." And §VI-D: c trades intra-group
reliability against S·(log S + c) messages. These sweeps measure both
sides of each trade on the paper scenario.
"""

from repro.experiments.ablations import (
    sweep_fanout_constant,
    sweep_link_redundancy,
)
from repro.workloads import PaperScenario

SCENARIO = PaperScenario(sizes=(8, 40, 200))  # scaled for sweep speed
RUNS = 6


def test_ablation_link_redundancy(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: sweep_link_redundancy(
            g_values=(1, 2, 5, 10, 20),
            scenario=SCENARIO,
            alive_fraction=0.6,
            runs=RUNS,
            executor=sweep_executor,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "ablation_link_redundancy")

    rows = table.as_dicts()
    # More links -> more inter-group messages (the cost side).
    inter = [row["inter_msgs"] for row in rows]
    assert inter[-1] > inter[0]
    # More links -> better (or equal) root delivery on average (the
    # benefit side) comparing the extremes.
    assert rows[-1]["recv_root"] >= rows[0]["recv_root"] - 0.05
    # The analytic pit-based prediction moves the same way.
    assert rows[-1]["analytic_root"] >= rows[0]["analytic_root"]


def test_ablation_fanout_constant(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: sweep_fanout_constant(
            c_values=(0, 1, 2, 3, 5, 8),
            scenario=SCENARIO,
            alive_fraction=1.0,
            runs=RUNS,
            executor=sweep_executor,
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "ablation_fanout_constant")

    rows = table.as_dicts()
    # Cost grows with c...
    msgs = [row["event_msgs"] for row in rows]
    assert msgs == sorted(msgs)
    # ...and delivery improves, tracking e^{-e^{-c}}.
    assert rows[-1]["recv_bottom"] >= rows[0]["recv_bottom"]
    assert rows[-1]["recv_bottom"] >= 0.97
    analytic = [row["analytic_one_group"] for row in rows]
    assert analytic == sorted(analytic)
