"""Repair bench — quantifying §VII's "pessimistic" frozen-membership setting.

Paper: "Pessimistically, we assume that the membership algorithm does not
'replace' a failed process, and that these fail at the very beginning."
The full protocol (membership shuffles + KEEP_TABLE_UPDATED +
FIND_SUPER_CONTACT) repairs tables at runtime; at the same failure
fraction, the repaired system must dominate the frozen one — especially
at the root, where frozen inter-group links die silently.
"""

from repro.experiments.repair import repair_comparison
from repro.workloads import PaperScenario

SCENARIO = PaperScenario(sizes=(4, 12, 48), p_succ=0.9)


def test_repair_recovers_reliability(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: repair_comparison(
            alive_fraction=0.4, runs=4, scenario=SCENARIO, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "repair_vs_frozen")

    rows = {row["mode"]: row for row in table.as_dicts()}
    frozen = rows["frozen"]
    repaired = rows["repaired"]

    # Among survivors, the repaired system dominates the frozen one.
    assert repaired["bottom_delivery"] >= frozen["bottom_delivery"] - 0.05
    assert repaired["root_delivery"] >= frozen["root_delivery"] + 0.15, (
        "live repair must substantially recover inter-group reliability"
    )
    # And it approaches the failure-free regime in its own group.
    assert repaired["bottom_delivery"] >= 0.9
