"""Fig. 11 — reliability under dynamic (weakly-consistent) failures.

Paper (§VII-B): "a process can appear to be failed for a process while
appearing alive for another one (to simulate a weakly consistent
membership algorithm). We achieve a much better reliability for a weakly
connected system than in the preceding scenario (Figure 10)."
"""

from repro.experiments import DEFAULT_GRID, run_figure10, run_figure11
from repro.workloads import PaperScenario

SCENARIO = PaperScenario()
RUNS = 5


def test_figure11(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: run_figure11(
            grid=DEFAULT_GRID, runs=RUNS, scenario=SCENARIO, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig11_reliability_dynamic")

    rows = {row["alive_fraction"]: row for row in table.as_dicts()}

    # Full aliveness behaves like Fig. 10's.
    assert rows[1.0]["recv_T2"] >= 0.97

    # The paper's headline comparison: MUCH better reliability than the
    # stillborn case over the mid-range. Compare directly per point.
    fig10 = run_figure10(
        grid=(0.4, 0.5, 0.6, 0.7), runs=RUNS, scenario=SCENARIO
    )
    fig10_rows = {row["alive_fraction"]: row for row in fig10.as_dicts()}
    for alive in (0.4, 0.5, 0.6, 0.7):
        assert rows[alive]["recv_T2"] > fig10_rows[alive]["recv_T2"] + 0.1, (
            f"dynamic failures must dominate stillborn at alive={alive}"
        )

    # Transient perceived failures still deliver broadly at 50%.
    assert rows[0.5]["recv_T2"] >= 0.8
