"""§VI-E.2 — memory complexity, measured table sizes vs the paper's claims.

Paper: "the maximal number of membership tables in daMulticast is 2 (and 1
if the process is interested in the root topic). This number does not
depend upon the number of topics a process is interested in, when these
include one another."
"""

from repro.analysis import (
    broadcast_memory,
    damulticast_memory,
    hierarchical_memory,
    multicast_memory,
)
from repro.metrics.report import Table
from repro.workloads import PaperScenario

SCENARIO = PaperScenario()


def build_and_measure():
    """Build the §VII system and measure actual per-process table state."""
    built = SCENARIO.build(seed=7, alive_fraction=1.0)
    system = built.system
    table = Table(
        "§VI-E.2 measured memory (entries and tables per process)",
        ["group", "group_size", "mean_entries", "max_entries", "tables"],
        precision=2,
    )
    for topic, size in zip(built.topics, SCENARIO.sizes):
        members = system.group(topic)
        entries = [p.memory_footprint for p in members]
        tables = [1 if p.super_table.is_empty else 2 for p in members]
        table.add_row(
            topic.name,
            size,
            sum(entries) / len(entries),
            max(entries),
            max(tables),
        )
    return table, system, built


def test_memory_complexity(benchmark, emit):
    table, system, built = benchmark.pedantic(
        build_and_measure, rounds=1, iterations=1
    )
    emit(table, "sec6_memory_measured")

    rows = {row["group"]: row for row in table.as_dicts()}
    topics = built.topics

    # Root processes: exactly 1 table; everyone else: exactly 2.
    assert rows["."]["tables"] == 1
    assert rows[topics[1].name]["tables"] == 2
    assert rows[topics[2].name]["tables"] == 2

    # Measured entries stay within (b+1)log10(S) + z for every process.
    params = SCENARIO.params()
    for topic, size in zip(topics, SCENARIO.sizes):
        bound = params.table_capacity(size) + params.z
        assert rows[topic.name]["max_entries"] <= bound

    # Closed-form ordering (§VI-E.2): daMulticast's per-process memory is
    # below multicast (b) and hierarchical (c) for the paper scenario.
    sizes = list(reversed(SCENARIO.sizes))
    ours = damulticast_memory(max(sizes), c=SCENARIO.c, z=SCENARIO.z)
    closed = Table(
        "§VI-E.2 closed forms (natural logs)",
        ["algorithm", "memory_per_process"],
    )
    closed.add_row("daMulticast", ours)
    closed.add_row("broadcast (a)", broadcast_memory(sum(sizes), c=SCENARIO.c))
    closed.add_row("multicast (b)", multicast_memory(sizes, c=SCENARIO.c))
    closed.add_row(
        "hierarchical (c)", hierarchical_memory(10, 111, c1=SCENARIO.c, c2=SCENARIO.c)
    )
    emit(closed, "sec6_memory_closed_forms")
    values = {row["algorithm"]: row["memory_per_process"] for row in closed.as_dicts()}
    assert values["daMulticast"] < values["multicast (b)"]
    assert values["daMulticast"] < values["hierarchical (c)"]
