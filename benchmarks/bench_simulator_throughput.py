"""Micro-benchmarks of the simulation substrate itself.

Unlike the figure benches (one-shot experiment harnesses), these use
pytest-benchmark's repeated rounds to track the raw speed of the pieces
every experiment pays for: engine event throughput, network transmission
pipeline, and one full §VII publication at paper scale. Regressions here
multiply into every sweep.
"""

import random

from repro.net import Network
from repro.net.message import Ping
from repro.sim import Engine
from repro.workloads import PaperScenario


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        engine = Engine()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.schedule(1.0, tick)

        engine.schedule(1.0, tick)
        engine.run()
        return engine.processed

    processed = benchmark(run_10k_events)
    benchmark.extra_info["events"] = processed
    assert processed == 10_000


def test_network_pipeline_throughput(benchmark):
    class Sink:
        def __init__(self, pid):
            self.pid = pid
            self.received = 0

        def handle_message(self, message):
            self.received += 1

    def run_5k_sends():
        engine = Engine()
        network = Network(engine, random.Random(0), p_success=0.9)
        actors = [Sink(i) for i in range(10)]
        for actor in actors:
            network.register(actor)
        ping = Ping(sender=0, nonce=1)
        for i in range(5_000):
            network.send(0, 1 + (i % 9), ping)
        engine.run()
        return network.stats.total_sent

    sent = benchmark(run_5k_sends)
    benchmark.extra_info["events"] = sent
    assert sent == 5_000


def test_full_paper_publication(benchmark):
    scenario = PaperScenario()

    def one_publication():
        built = scenario.build(seed=7, alive_fraction=1.0)
        built.publish_and_run()
        return built.system.stats.event_messages_sent()

    messages = benchmark(one_publication)
    benchmark.extra_info["events"] = messages
    assert messages > 7000


def test_large_static_group_publication(benchmark):
    """The batched-transport stress case: one publication flooding a single
    static group of 5000 subscribers (70k transmissions, all zero-latency —
    every fan-out rides the multicast fast path and the engine's FIFO
    bucket). The build phase is excluded; this times the transport."""
    from repro.core.system import DaMulticastSystem

    system = DaMulticastSystem(seed=3, p_success=0.85, mode="static")
    system.add_group(".big", 5000)
    system.finalize_static_membership()
    published = []

    def one_publication():
        # Publications accumulate on the same built system; dedup state is
        # per event id, so each round floods the full group again.
        published.append(system.publish(".big"))
        system.run_until_idle()
        return system.stats.total_sent

    sent = benchmark(one_publication)
    # Rounds accumulate on one system, so report the per-round flood size.
    benchmark.extra_info["events"] = sent // max(1, len(published))
    assert sent >= 5000 * 10  # a real flood ran (fanout log10(5000)+5 ≈ 9)
