"""Fig. 10 — fraction of processes receiving the event, stillborn failures.

Paper (§VII-B): "the reception probability depends on the overall
probability of a process having failed. Of course, the reliability is
smaller for processes interested in T0 as the reception of an event of
topic T2, by the group T0, depends on the success of the dissemination of
this event in the group T2 and T1."
"""

from repro.experiments import DEFAULT_GRID, run_figure10
from repro.workloads import PaperScenario

SCENARIO = PaperScenario()
RUNS = 5


def test_figure10(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: run_figure10(
            grid=DEFAULT_GRID, runs=RUNS, scenario=SCENARIO, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig10_reliability_stillborn")

    rows = {row["alive_fraction"]: row for row in table.as_dicts()}
    full = rows[1.0]

    # Near-total delivery at full aliveness, every group.
    assert full["recv_T2"] >= 0.97
    assert full["recv_T1"] >= 0.95
    assert full["recv_T0"] >= 0.90

    # Collapse as aliveness -> 0.
    assert rows[0.0]["recv_T2"] <= 0.01
    assert rows[0.0]["recv_T0"] == 0.0

    # Monotone in aliveness for the publication group.
    t2 = table.column("recv_T2")
    assert all(b >= a - 0.05 for a, b in zip(t2, t2[1:]))

    # Depth ordering on average over the sweep: the root group (two hops
    # from the publication) cannot beat the publication group.
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(table.column("recv_T2")) >= mean(table.column("recv_T0"))

    # Fraction can never exceed the alive fraction (dead processes cannot
    # receive) — the curves stay at or below the diagonal.
    for row in table.as_dicts():
        assert row["recv_T2"] <= row["alive_fraction"] + 0.05
