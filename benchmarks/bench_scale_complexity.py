"""Scaling benches — §VI's asymptotic claims measured directly.

§VI-B: "maxNbMsgSent ∈ O(S_Tmax·ln(S_Tmax))" (for constant t), and
"∈ O(t·S_Tmax·ln(S_Tmax))" otherwise. We grow S and t independently and
check the measured growth laws.
"""

from repro.experiments.scale import sweep_depth, sweep_group_size


def test_scale_group_size(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: sweep_group_size(
            s_values=(50, 100, 200, 400, 800), runs=3, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "scale_group_size")

    rows = table.as_dicts()
    normalized = [row["normalized"] for row in rows]
    # The publication group's own cost normalized by S·(log S + c) must
    # stay ~flat over a 16x range of S: no super-log-linear growth hides
    # in the protocol. (The ceil() in the fan-out gives the wiggle room.)
    assert max(normalized) / min(normalized) <= 1.25
    assert all(0.6 <= n <= 1.4 for n in normalized)
    # The total is dominated by the bottom group as S grows.
    assert rows[-1]["bottom_messages"] >= 0.9 * rows[-1]["event_messages"]


def test_scale_depth(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: sweep_depth(t_values=(1, 2, 3, 4, 5), runs=3, executor=sweep_executor),
        rounds=1,
        iterations=1,
    )
    emit(table, "scale_depth")

    rows = table.as_dicts()
    per_level = [row["per_level"] for row in rows]
    # Linear in t: per-level cost is flat (every level pays S(log S + c)).
    assert max(per_level) / min(per_level) <= 1.2
    # Inter-group traffic grows with the number of crossed edges (g·a per
    # edge, ±Monte-Carlo noise): compare the endpoints.
    inter = [row["inter_messages"] for row in rows]
    assert inter[-1] > inter[0]
