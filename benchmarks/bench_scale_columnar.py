"""Large-S columnar-backend bench: the paper's scale claims, measured.

`bench_sec6_memory_complexity` evaluates the §VI closed forms; this bench
actually *runs* a §VII-shaped static scenario at populations the object
backend cannot reach (its per-process object graph walls out around
S≈10⁴). Two measurements land in the per-PR trajectory record
(BENCH_PR<k>.json via make_bench_report.py):

* **bytes/process** — tracemalloc peak of the columnar build divided by
  the population, the measured counterpart of the O(k·(b+1)·log S)
  memory claim;
* **events/sec** — engine events processed per wall-clock second while
  one publication floods the full population, the simulator-throughput
  number that bounds every downstream sweep.

Population comes from ``REPRO_COLUMNAR_S`` (default 10⁵ locally; CI sets
2·10⁴ to stay inside the smoke-bench time budget). The scenario is the
golden shape scaled up: a supergroup of S/100 under ".t1" and the
S-process group under ".t1.t2", p_success=0.85.
"""

import os
import tracemalloc

from repro.core.columnar import ColumnarStaticSystem

S = int(os.environ.get("REPRO_COLUMNAR_S", "100000"))
SUPER_S = max(10, S // 100)


def build_system(seed: int = 9) -> ColumnarStaticSystem:
    system = ColumnarStaticSystem(seed=seed, p_success=0.85)
    system.add_group(".t1", SUPER_S)
    system.add_group(".t1.t2", S)
    system.finalize_static_membership()
    return system


def test_columnar_build_bytes_per_process(benchmark):
    """Membership construction at scale, with its true memory peak."""
    peaks = []

    def build_traced():
        tracemalloc.start()
        system = build_system()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks.append(peak)
        return system

    system = benchmark.pedantic(build_traced, rounds=1, iterations=1)
    total = S + SUPER_S
    benchmark.extra_info["processes"] = total
    benchmark.extra_info["bytes_per_process"] = round(max(peaks) / total, 1)
    benchmark.extra_info["membership_bytes_per_process"] = round(
        system.membership_bytes() / total, 1
    )
    # tracemalloc peak stays within an order of magnitude of the frozen
    # columns themselves — no hidden object graph at scale.
    assert max(peaks) < 10 * system.membership_bytes() + 50_000_000


def test_columnar_publication_events_per_sec(benchmark):
    """One full-population publication flood through the block-actor
    delivery path, timed over the engine's processed-event count."""
    system = build_system()
    events = []

    def one_publication():
        before = system.engine.processed
        event = system.publish(".t1.t2")
        system.run_until_idle()
        events.append(event)
        # dedup bitmasks are per event id; drop the finished flood so
        # repeated rounds don't accumulate dead state
        for topic in (".t1", ".t1.t2"):
            system.group_actor(topic).release_event_state(event.event_id)
        return system.engine.processed - before

    processed = benchmark.pedantic(one_publication, rounds=2, iterations=1)
    benchmark.extra_info["events"] = processed
    benchmark.extra_info["population"] = S + SUPER_S
    # the flood really covered the population: every delivery is at least
    # one engine event, with gossip redundancy on top
    assert processed > S
    stats = system.tracker.topic_stats(events[-1].topic)
    assert stats.delivered >= len(events) * 0.9 * (S + SUPER_S)
    # streaming tracker held O(topics) state throughout
    assert system.tracker.state_size() <= 2
