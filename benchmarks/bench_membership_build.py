"""Static membership construction — O(S²) legacy path vs O(S·k) build context.

Not a paper figure: this bench guards the PR that made static membership
construction linear in the group size. Three layers are measured:

* **draw layer** — drawing every member's topic table plus one supertopic
  ``z``-draw per member for one group of S descriptors, with the
  historical per-member helpers (``_reference_draw_topic_table`` /
  ``_reference_draw_super_table`` — each call rebuilds an O(S) exclusion
  list / population copy) vs the shared
  :class:`~repro.membership.static.GroupTableBuilder` +
  :class:`~repro.membership.static.GroupSampler` build context;
* **daMulticast construction** — end-to-end static build (populate +
  finalize) the way the repository did it before this PR (per-join
  group-size sweep — the old ``_refresh_group_size`` — plus reference
  draws at finalize) vs the current API. Both use the same seed and the
  resulting tables are asserted identical: the speedup changes no draw;
* **baseline construction** — current construction wall time for each
  baseline system, for the ROADMAP record.

The quadratic-vs-linear shape makes the ratios grow with S; the headline
assertion demands ≥10× on daMulticast construction at S=5000 (measured
≈11-12× on the dev container).
"""

import gc
import random
import time

from repro.baselines.broadcast import GossipBroadcastSystem
from repro.baselines.hierarchical import HierarchicalGossipSystem
from repro.baselines.multicast import GossipMulticastSystem
from repro.baselines.naive_publisher import NaivePublisherSystem
from repro.core.system import DaMulticastSystem
from repro.membership.static import (
    GroupSampler,
    GroupTableBuilder,
    _reference_draw_super_table,
    _reference_draw_topic_table,
    static_table_capacity,
)
from repro.membership.view import ProcessDescriptor
from repro.metrics.report import Table
from repro.topics.topic import Topic

SIZES = (500, 1000, 5000)
Z = 3
GROUP = Topic.parse(".bench")
SUPER = Topic.parse(".")


# ----------------------------------------------------------------------
# Draw layer: reference helpers vs shared build context
# ----------------------------------------------------------------------
def _draw_all_reference(group, supers, capacity, rng):
    views = []
    for member in group:
        views.append(_reference_draw_topic_table(member, group, capacity, rng))
        views.append(_reference_draw_super_table(supers, Z, rng))
    return views


def _draw_all_fast(group, supers, capacity, rng):
    builder = GroupTableBuilder(group)
    sampler = GroupSampler(supers)
    views = []
    for index in range(len(group)):
        views.append(builder.table_at(index, capacity, rng))
        views.append(sampler.table(Z, rng))
    return views


def _draw_layer(size: int) -> tuple[float, float]:
    """Seconds to draw all tables of one S-sized group, reference vs fast."""
    group = [ProcessDescriptor(pid, GROUP) for pid in range(size)]
    supers = [ProcessDescriptor(size + pid, SUPER) for pid in range(size // 10)]
    capacity = static_table_capacity(size, b=3.0)

    gc.collect()
    start = time.perf_counter()
    reference = _draw_all_reference(group, supers, capacity, random.Random(1))
    ref_elapsed = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    fast = _draw_all_fast(group, supers, capacity, random.Random(1))
    fast_elapsed = time.perf_counter() - start

    # Identical trajectories — the speedup changes no draw.
    assert [v.pids for v in fast] == [v.pids for v in reference]
    return ref_elapsed, fast_elapsed


# ----------------------------------------------------------------------
# daMulticast construction: legacy reconstruction vs current API
# ----------------------------------------------------------------------
def _tables_digest(system: DaMulticastSystem) -> list[list[int]]:
    return [process.topic_table().pids for process in system.processes]


def _legacy_construction(size: int) -> tuple[float, list[list[int]]]:
    """The pre-PR construction, operation for operation.

    * population: after every join, re-notify every member of the new
      group size (the old ``_refresh_group_size`` sweep — O(S) per join);
    * finalize: the reference per-member draw (O(S) exclusion list per
      member).

    Same seed and RNG stream as the fast path, so the resulting tables
    must be identical.
    """
    gc.collect()
    start = time.perf_counter()
    system = DaMulticastSystem(seed=3, mode="static")
    for _ in range(size):
        system.add_process(".big")
        members = system.group(".big")
        for member in members:  # the old per-join sweep
            member.set_group_size(len(members))
    rng = system.harness.rngs.stream("static-membership")
    for topic in system.topics():
        members = system.group(topic)
        population = [p.descriptor for p in members]
        capacity = system.config.params_for(topic).table_capacity(len(members))
        for process in members:
            process.install_static_topic_table(
                _reference_draw_topic_table(
                    process.descriptor, population, capacity, rng
                )
            )
    elapsed = time.perf_counter() - start
    return elapsed, _tables_digest(system)


def _fast_construction(size: int) -> tuple[float, list[list[int]]]:
    gc.collect()
    start = time.perf_counter()
    system = DaMulticastSystem(seed=3, mode="static")
    system.add_group(".big", size)
    system.finalize_static_membership()
    elapsed = time.perf_counter() - start
    return elapsed, _tables_digest(system)


# ----------------------------------------------------------------------
# Baseline construction (current API, for the ROADMAP record)
# ----------------------------------------------------------------------
def _baseline_construction(size: int) -> dict[str, float]:
    timings: dict[str, float] = {}
    for name, cls in (
        ("broadcast", GossipBroadcastSystem),
        ("multicast", GossipMulticastSystem),
        ("naive", NaivePublisherSystem),
        ("hierarchical", HierarchicalGossipSystem),
    ):
        start = time.perf_counter()
        baseline = cls(seed=3)
        baseline.add_group(".big", size)
        baseline.finalize_membership()
        timings[name] = time.perf_counter() - start
    return timings


def test_membership_build(benchmark, emit):
    def run():
        # Warm every code path once at a small size so the first timed
        # measurement doesn't pay interpreter warm-up (bytecode
        # specialization, method caches) on behalf of one side.
        _draw_layer(200)
        _legacy_construction(200)
        _fast_construction(200)
        _baseline_construction(200)
        table = Table(
            "static membership construction: legacy O(S^2) vs shared build context",
            [
                "S",
                "draw_ref_s",
                "draw_fast_s",
                "draw_speedup",
                "build_legacy_s",
                "build_fast_s",
                "build_speedup",
                "broadcast_s",
                "multicast_s",
                "naive_s",
                "hierarchical_s",
            ],
            precision=4,
        )
        for size in SIZES:
            # min-of-2 on every timed path: one scheduling hiccup in a
            # 100ms-scale measurement must not flake the ratio assertions.
            ref_a, fast_a = _draw_layer(size)
            ref_b, fast_b = _draw_layer(size)
            ref_elapsed, fast_elapsed = min(ref_a, ref_b), min(fast_a, fast_b)
            legacy_a, legacy_tables = _legacy_construction(size)
            legacy_b, _ = _legacy_construction(size)
            legacy_elapsed = min(legacy_a, legacy_b)
            # The fast build is ~100ms-scale, so a single scheduling
            # hiccup moves its ratio far more than the ~2s legacy run's;
            # one extra repetition is cheap and stabilises the CI gate.
            build_a, fast_tables = _fast_construction(size)
            build_b, _ = _fast_construction(size)
            build_c, _ = _fast_construction(size)
            build_elapsed = min(build_a, build_b, build_c)
            assert fast_tables == legacy_tables  # bit-identical membership
            baselines = _baseline_construction(size)
            table.add_row(
                size,
                ref_elapsed,
                fast_elapsed,
                ref_elapsed / fast_elapsed,
                legacy_elapsed,
                build_elapsed,
                legacy_elapsed / build_elapsed,
                baselines["broadcast"],
                baselines["multicast"],
                baselines["naive"],
                baselines["hierarchical"],
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table, "membership_build")

    rows = table.as_dicts()
    by_size = {row["S"]: row for row in rows}
    # Feed the per-PR bench trajectory record (BENCH_PR<k>.json): build
    # seconds and speedup per group size, keyed by S.
    benchmark.extra_info["build_seconds"] = {
        str(row["S"]): row["build_fast_s"] for row in rows
    }
    benchmark.extra_info["build_speedup_vs_legacy"] = {
        str(row["S"]): row["build_speedup"] for row in rows
    }
    # The tentpole claim: ≥10× end-to-end static construction at S=5000
    # (measured ≈11-12× on the dev container; the removed work is O(S²),
    # so the margin only grows with S).
    assert by_size[5000]["build_speedup"] >= 10.0, (
        f"S=5000 static construction only "
        f"{by_size[5000]['build_speedup']:.1f}x over the legacy path"
    )
    # Quadratic → O(S·k): both ratios must grow across the sweep.
    assert by_size[5000]["build_speedup"] > by_size[500]["build_speedup"]
    assert by_size[5000]["draw_speedup"] > by_size[500]["draw_speedup"]
    # The pure draw layer must stay decisively ahead as well (measured
    # ≈8× at S=5000; conservative floor so CI noise cannot flake it).
    assert by_size[5000]["draw_speedup"] >= 4.0
    # The old 2s construction cliff at S=5000 is gone.
    assert by_size[5000]["build_fast_s"] < 1.0
