"""§VI-E.1 — message complexity, measured against the closed forms.

Paper: "The message complexity is O(S_Tmax·ln(S_Tmax)) for all algorithms
except for the gossip-based broadcast which has a message complexity of
O(n·ln(n)). In other words, enhancing a gossip-based membership algorithm
with daMulticast does not hamper its overall message complexity
performance."
"""

import math

from repro.analysis import (
    broadcast_messages,
    damulticast_messages,
    multicast_messages,
)
from repro.experiments import measured_comparison
from repro.metrics.report import Table
from repro.workloads import PaperScenario

SCENARIO = PaperScenario()  # sizes 10/100/1000, log10, p_succ 0.85


def test_message_complexity(benchmark, emit):
    measured = benchmark.pedantic(
        lambda: measured_comparison(scenario=SCENARIO, runs=3),
        rounds=1,
        iterations=1,
    )
    emit(measured, "sec6_measured_comparison")

    rows = {row["algorithm"]: row for row in measured.as_dicts()}

    # Closed forms on the same scenario (sizes bottom-up for analysis).
    sizes = list(reversed(SCENARIO.sizes))
    analytic = Table(
        "§VI-E.1 closed forms (same scenario, base-10 logs)",
        ["algorithm", "analytic_messages"],
    )
    ours = damulticast_messages(
        sizes, c=SCENARIO.c, g=SCENARIO.g, a=SCENARIO.a, z=SCENARIO.z,
        p_succ=SCENARIO.p_succ, log_base=10,
    )
    analytic.add_row("daMulticast", ours)
    n = sum(SCENARIO.sizes)
    analytic.add_row("broadcast (a)", broadcast_messages(n, c=SCENARIO.c, log_base=10))
    analytic.add_row(
        "multicast (b)", multicast_messages(sizes, c=SCENARIO.c, log_base=10)
    )
    emit(analytic, "sec6_message_closed_forms")

    # daMulticast's measured total is within the closed form's ballpark
    # (loss makes some processes never forward, so measured <= analytic).
    measured_ours = rows["daMulticast"]["event_messages"]
    assert measured_ours <= ours * 1.10
    assert measured_ours >= ours * 0.55

    # Who wins: daMulticast <= broadcast; broadcast pays n log n.
    assert (
        rows["daMulticast"]["event_messages"]
        <= rows["broadcast (a)"]["event_messages"]
    )

    # Scale check of the asymptotic claim: growing S_T2 10x adds exactly
    # the dominant S·(log S + c) term's difference — the total is driven
    # by S_Tmax·log(S_Tmax), as §VI-E.1 claims for daMulticast.
    small = damulticast_messages([100, 100, 10], log_base=10)
    big = damulticast_messages([1000, 100, 10], log_base=10)
    dominant_term_delta = 1000 * (3 + 5) - 100 * (2 + 5)
    assert math.isclose(big - small, dominant_term_delta, rel_tol=0.01)
