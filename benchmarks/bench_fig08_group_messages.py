"""Fig. 8 — number of events sent within each group vs alive fraction.

Paper (§VII-B): "the maximal number of events sent within a group ...
The message complexity is of an order of S_Ti·ln(S_Ti) as expected."
With the paper's own (base-10) fan-out, the T2 curve peaks at
``1000·(log10(1000)+5) = 8000`` messages at full aliveness and decays
roughly linearly with the failure fraction; T1 and T0 sit near the x-axis
(700 and ≤60).
"""

from repro.experiments import DEFAULT_GRID, run_figure8
from repro.workloads import PaperScenario

SCENARIO = PaperScenario()  # the §VII setting, log10 fan-out
RUNS = 5


def test_figure8(benchmark, emit, sweep_executor):
    table = benchmark.pedantic(
        lambda: run_figure8(
            grid=DEFAULT_GRID, runs=RUNS, scenario=SCENARIO, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    emit(table, "fig08_group_messages")

    rows = {row["alive_fraction"]: row for row in table.as_dicts()}
    full = rows[1.0]

    # Peak scale: S*(log10 S + c) per group at full aliveness.
    assert 7200 <= full["msgs_T2"] <= 8000  # 1000 * 8
    assert 500 <= full["msgs_T1"] <= 700    # 100 * 7
    assert 0 < full["msgs_T0"] <= 60        # 10 * 6

    # Ordering by group size at every aliveness level with any dissemination.
    for row in table.as_dicts():
        if row["msgs_T1"] > 0:
            assert row["msgs_T2"] >= row["msgs_T1"] >= row["msgs_T0"]

    # Message counts grow with aliveness (roughly linear decay with failures).
    t2 = table.column("msgs_T2")
    assert t2 == sorted(t2), "T2 messages must be monotone in aliveness"
    # Roughly linear: the midpoint is within 25% of half the peak.
    mid = rows[0.5]["msgs_T2"]
    assert 0.3 * full["msgs_T2"] <= mid <= 0.7 * full["msgs_T2"]
