"""Parallel sweep engine — serial-vs-parallel equality and wall-clock.

Runs one fig-10-sized sweep (the paper's §VII scenario over the full
alive-fraction grid, 5 runs per point — the workload behind Figs. 8–11)
twice: serially and fanned out over a worker pool. The gate is the
**equality assertion** — `run_sweep(jobs=N)` must be bit-identical to
the serial path — never the timing: speedup depends on the core count
of the machine running CI, while equality must hold everywhere. The
measured wall-clocks are emitted for the scaling story (near-linear on
a multi-core container, pool overhead only on a single core).
"""

import os
import time

from repro.experiments import DEFAULT_GRID, run_figure10
from repro.metrics.report import Table
from repro.workloads import PaperScenario

SCENARIO = PaperScenario()
RUNS = 5


def test_sweep_parallel_equality_and_scaling(benchmark, emit, sweep_jobs):
    t0 = time.perf_counter()
    serial = run_figure10(grid=DEFAULT_GRID, runs=RUNS, scenario=SCENARIO)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: run_figure10(
            grid=DEFAULT_GRID, runs=RUNS, scenario=SCENARIO, jobs=sweep_jobs
        ),
        rounds=1,
        iterations=1,
    )
    parallel_s = time.perf_counter() - t0

    # The gate: bit-identical aggregated output, every cell of every row.
    assert list(parallel.columns) == list(serial.columns)
    assert parallel.rows == serial.rows

    table = Table(
        f"Parallel sweep — fig-10-sized workload, {len(DEFAULT_GRID)} points "
        f"x {RUNS} runs ({os.cpu_count()} cores)",
        ["mode", "jobs", "seconds", "speedup"],
        precision=3,
    )
    table.add_row("serial", 1, serial_s, 1.0)
    table.add_row("parallel", sweep_jobs, parallel_s, serial_s / parallel_s)
    emit(table, "sweep_parallel")
    # Sweep wall-clock for the per-PR bench trajectory record.
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["parallel_s"] = parallel_s
    benchmark.extra_info["jobs"] = sweep_jobs
    benchmark.extra_info["sweep_cells"] = len(DEFAULT_GRID) * RUNS
