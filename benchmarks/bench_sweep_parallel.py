"""Execution backends — serial-vs-pool-vs-warm equality and wall-clock.

Runs one fig-10-sized sweep (the paper's §VII scenario over the full
alive-fraction grid, 5 runs per point — the workload behind Figs. 8–11)
once per executor backend: serial, a fresh ``pool:N`` and a persistent
``warm:N``. The gate is the **equality assertion** — every backend must
be bit-identical to the serial path — never the timing: speedup depends
on the core count of the machine running CI, while equality must hold
everywhere. The measured wall-clocks are emitted for the scaling story
(near-linear on a multi-core container, pool overhead only on a single
core; warm re-use shaving the per-sweep spawn/compile cost).
"""

import os
import time

from repro.experiments import DEFAULT_GRID, WarmPoolExecutor, run_figure10
from repro.metrics.report import Table
from repro.workloads import PaperScenario

SCENARIO = PaperScenario()
RUNS = 5


def _sweep(executor):
    return run_figure10(
        grid=DEFAULT_GRID, runs=RUNS, scenario=SCENARIO, executor=executor
    )


def test_sweep_parallel_equality_and_scaling(
    benchmark, emit, sweep_jobs, sweep_executor
):
    t0 = time.perf_counter()
    serial = _sweep("serial")
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: _sweep(sweep_executor), rounds=1, iterations=1
    )
    parallel_s = time.perf_counter() - t0

    warm_pool = WarmPoolExecutor(sweep_jobs)
    try:
        t0 = time.perf_counter()
        warm_cold_call = _sweep(warm_pool)
        warm_first_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_warm_call = _sweep(warm_pool)  # workers + compile cache hot
        warm_second_s = time.perf_counter() - t0
    finally:
        warm_pool.close()

    # The gate: bit-identical aggregated output for EVERY backend,
    # every cell of every row.
    for other in (parallel, warm_cold_call, warm_warm_call):
        assert list(other.columns) == list(serial.columns)
        assert other.rows == serial.rows

    table = Table(
        f"Execution backends — fig-10-sized workload, {len(DEFAULT_GRID)} "
        f"points x {RUNS} runs ({os.cpu_count()} cores)",
        ["executor", "jobs", "seconds", "speedup"],
        precision=3,
    )
    table.add_row("serial", 1, serial_s, 1.0)
    table.add_row(sweep_executor, sweep_jobs, parallel_s, serial_s / parallel_s)
    table.add_row(
        f"warm:{sweep_jobs} (1st)", sweep_jobs, warm_first_s,
        serial_s / warm_first_s,
    )
    table.add_row(
        f"warm:{sweep_jobs} (2nd)", sweep_jobs, warm_second_s,
        serial_s / warm_second_s,
    )
    emit(table, "sweep_parallel")
    # Sweep wall-clock for the per-PR bench trajectory record.
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["parallel_s"] = parallel_s
    benchmark.extra_info["warm_first_s"] = warm_first_s
    benchmark.extra_info["warm_second_s"] = warm_second_s
    benchmark.extra_info["jobs"] = sweep_jobs
    benchmark.extra_info["sweep_cells"] = len(DEFAULT_GRID) * RUNS
