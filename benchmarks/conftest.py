"""Shared fixtures for the benchmark harness.

Every bench regenerates one figure/table of the paper, prints the same
rows/series the paper reports, persists them under ``benchmarks/out/`` and
asserts the qualitative acceptance criteria from DESIGN.md §8 (who wins,
orderings, scales). Timing is captured by pytest-benchmark with exactly one
round — these are experiment harnesses, not micro-benchmarks.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def sweep_jobs() -> int:
    """Worker processes for sweep-based benches.

    Sweep results are bit-identical for any value (asserted by
    tests/test_sweep_parallel.py and bench_sweep_parallel.py), so
    benches run with one worker per core (capped at 4) unless
    ``REPRO_SWEEP_JOBS`` overrides it.
    """
    return int(
        os.environ.get("REPRO_SWEEP_JOBS", str(min(4, os.cpu_count() or 1)))
    )


@pytest.fixture(scope="session")
def sweep_executor(sweep_jobs) -> str:
    """Executor spec for sweep-based benches: a pool of ``sweep_jobs``.

    A spec string (``"pool:N"``, or ``"serial"`` for one worker) rather
    than an Executor instance, so every bench resolves a fresh executor
    and none shares pool state across benches.
    """
    return "serial" if sweep_jobs == 1 else f"pool:{sweep_jobs}"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    """Directory where rendered tables are persisted."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(report_dir, capsys):
    """Print a rendered table (visible with -s) and write it to disk."""

    def _emit(table, name: str) -> None:
        rendered = table.render()
        with capsys.disabled():
            print()
            print(rendered)
        (report_dir / f"{name}.txt").write_text(rendered + "\n")

    return _emit
