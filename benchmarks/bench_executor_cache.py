"""Executor/cache trajectory — cold pool vs warm pool vs artifact cache.

One scenario sweep (§VII stillborn workload, alive-fraction grid), run
four ways:

* **cold** — a fresh ``pool:N`` per sweep (workers spawned, every spec
  compiled from scratch in each worker),
* **warm (1st/2nd)** — one persistent :class:`WarmPoolExecutor`; the
  second call reuses live workers and their per-digest compile cache,
* **cached** — a :class:`CachingExecutor` over a fully warmed artifact
  store: zero cells execute, results are read back from disk.

The gates are correctness, not timing: every path must be bit-identical
to the serial sweep, and the cached pass must execute exactly zero
cells. The wall-clocks land in ``BENCH_PR<k>.json`` (via
``make_bench_report.py``) as the cold-vs-warm-vs-cached trajectory.
"""

import os
import tempfile
import time

from repro.experiments import CachingExecutor, WarmPoolExecutor
from repro.experiments.artifacts import ArtifactStore
from repro.metrics.report import Table
from repro.workloads.spec import spec_digest, sweep_scenario

SPEC = {
    "name": "executor-cache-bench",
    "topics": {"kind": "chain", "depth": 2, "prefix": "t"},
    "subscriptions": {"kind": "per_level", "counts": [5, 20, 80]},
    "publications": {"kind": "single", "level": -1},
    "failures": {"kind": "stillborn", "alive_fraction": 0.7},
    "p_success": 0.85,
}
FIELD = "failures.alive_fraction"
VALUES = (0.4, 0.6, 0.8, 1.0)
RUNS = 3


def _sweep(executor):
    return sweep_scenario(
        SPEC, FIELD, list(VALUES), runs=RUNS, master_seed=7, executor=executor
    )


def _same(a, b):
    return a.points == b.points and a.means == b.means and a.stds == b.stds


def test_executor_cache_trajectory(benchmark, emit, sweep_jobs, sweep_executor):
    serial = _sweep("serial")

    t0 = time.perf_counter()
    cold = _sweep(sweep_executor)
    cold_s = time.perf_counter() - t0

    warm_pool = WarmPoolExecutor(sweep_jobs)
    try:
        t0 = time.perf_counter()
        warm_first = _sweep(warm_pool)
        warm_first_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_second = _sweep(warm_pool)
        warm_second_s = time.perf_counter() - t0
    finally:
        warm_pool.close()

    run_key = spec_digest(
        {"kind": "bench-executor-cache", "spec": SPEC, "field": FIELD}
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        store = ArtifactStore(cache_dir)
        populate = CachingExecutor(WarmPoolExecutor(sweep_jobs), store, run_key)
        try:
            t0 = time.perf_counter()
            cache_cold = _sweep(populate)
            populate_s = time.perf_counter() - t0
            assert populate.executed == len(VALUES) * RUNS
        finally:
            populate.close()

        cached = CachingExecutor(WarmPoolExecutor(sweep_jobs), store, run_key)
        try:
            t0 = time.perf_counter()
            cache_hot = benchmark.pedantic(
                lambda: _sweep(cached), rounds=1, iterations=1
            )
            cached_s = time.perf_counter() - t0
        finally:
            cached.close()
        # The cache gates: a warmed store serves everything — zero cells
        # executed — and the result is still bit-identical to serial.
        assert cached.hits == len(VALUES) * RUNS
        assert cached.executed == 0

    for other in (cold, warm_first, warm_second, cache_cold, cache_hot):
        assert _same(other, serial)

    cells = len(VALUES) * RUNS
    table = Table(
        f"Executor/cache trajectory — {len(VALUES)} points x {RUNS} runs "
        f"({os.cpu_count()} cores)",
        ["mode", "jobs", "seconds", "cells_executed"],
        precision=3,
    )
    table.add_row(f"cold {sweep_executor}", sweep_jobs, cold_s, cells)
    table.add_row(f"warm:{sweep_jobs} (1st)", sweep_jobs, warm_first_s, cells)
    table.add_row(f"warm:{sweep_jobs} (2nd)", sweep_jobs, warm_second_s, cells)
    table.add_row("cache populate", sweep_jobs, populate_s, cells)
    table.add_row("cache hit", sweep_jobs, cached_s, 0)
    emit(table, "executor_cache")
    benchmark.extra_info["cold_s"] = cold_s
    benchmark.extra_info["warm_first_s"] = warm_first_s
    benchmark.extra_info["warm_second_s"] = warm_second_s
    benchmark.extra_info["cache_populate_s"] = populate_s
    benchmark.extra_info["cache_hit_s"] = cached_s
    benchmark.extra_info["jobs"] = sweep_jobs
    benchmark.extra_info["sweep_cells"] = cells
