"""§VI-E.3 — reliability of all four algorithms, measured and closed-form.

Paper: "In comparison with other algorithms, the probability that all
processes receive an event is smaller with our algorithm, in the general
case, especially for the processes interested in the root topic. ...
However, it is possible to tune this."

Measured P(all alive members of a group receive) is compared against the
*effective* Erdős–Rényi prediction ``e^{-e^{-c_eff}}``, where ``c_eff``
accounts for the base-10 fan-out and channel loss (see
``analysis.reliability.effective_fanout_constant``) — the raw ``e^{-e^{-c}}``
limit assumes lossless natural-log gossip.
"""

from repro.analysis import (
    broadcast_reliability,
    damulticast_reliability,
    intergroup_propagation_probability,
    multicast_reliability,
)
from repro.analysis.reliability import effective_gossip_reliability
from repro.experiments.runner import run_sweep
from repro.metrics.report import Table
from repro.workloads import PaperScenario

SCENARIO = PaperScenario(p_succ=0.8)  # lossier hops make the gap visible
RUNS = 20


def measure_all_received(alive: float, seed: int):
    built = SCENARIO.build(seed=seed, alive_fraction=alive)
    built.publish_and_run()
    flags = built.all_received_flags()
    return {
        f"all_T{level}": 1.0 if flags[topic] else 0.0
        for level, topic in enumerate(built.topics)
    }


def analytic_all_received(level_sizes: list[int]) -> float:
    """Effective-c prediction of P(all of the *top* group receive).

    Eq. (1) multiplies one ``e^{-e^{-c}}`` per traversed level; that is
    pessimistic for upper groups, because the event's *arrival* upstairs
    needs only enough downstream coverage to elect links (captured by
    ``pit``), not full downstream delivery. The top group's own complete
    coverage is the only all-members requirement.
    """
    top = level_sizes[-1]
    result = effective_gossip_reliability(
        top,
        c=SCENARIO.c,
        p_succ=SCENARIO.p_succ,
        log_base=SCENARIO.fanout_log_base,
    )
    for size in level_sizes[:-1]:
        result *= intergroup_propagation_probability(
            size, g=SCENARIO.g, a=SCENARIO.a, z=SCENARIO.z,
            p_succ=SCENARIO.p_succ,
        )
    return result


def test_reliability_comparison(benchmark, emit, sweep_executor):
    sweep = benchmark.pedantic(
        lambda: run_sweep(
            measure_all_received,
            [1.0],
            runs=RUNS,
            label="sec6-rel",
            executor=sweep_executor,
        ),
        rounds=1,
        iterations=1,
    )

    # sizes bottom-up: publication group first.
    bottom_up = list(reversed(SCENARIO.sizes))
    measured = {
        "T2": sweep.means["all_T2"][0],
        "T1": sweep.means["all_T1"][0],
        "T0": sweep.means["all_T0"][0],
    }
    analytic = {
        "T2": analytic_all_received(bottom_up[:1]),
        "T1": analytic_all_received(bottom_up[:2]),
        "T0": analytic_all_received(bottom_up[:3]),
    }

    table = Table(
        "§VI-E.3 reliability: measured P(all of group receive) vs effective "
        f"closed forms ({RUNS} runs, p_succ={SCENARIO.p_succ}, log10 fanout)",
        ["group", "measured", "analytic_effective"],
    )
    for group in ("T2", "T1", "T0"):
        table.add_row(group, measured[group], analytic[group])
    emit(table, "sec6_reliability_comparison")

    closed = Table(
        "§VI-E.3 closed forms (natural-log idealization, p_succ on hops)",
        ["algorithm", "reliability"],
    )
    ours_root = damulticast_reliability(
        bottom_up, c=SCENARIO.c, g=SCENARIO.g, a=SCENARIO.a, z=SCENARIO.z,
        p_succ=SCENARIO.p_succ,
    )
    closed.add_row("daMulticast (root)", ours_root)
    closed.add_row("broadcast (a)", broadcast_reliability(SCENARIO.c))
    closed.add_row("multicast (b)", multicast_reliability(3, SCENARIO.c))
    emit(closed, "sec6_reliability_closed_forms")

    # Measured tracks the effective prediction per group (Monte-Carlo
    # noise with 20 Bernoulli runs: generous tolerance).
    for group in ("T2", "T1", "T0"):
        assert abs(measured[group] - analytic[group]) <= 0.3, (
            group, measured[group], analytic[group],
        )

    # The paper's §VI-E.3 ordering on the closed forms: daMulticast's
    # root-group reliability does not exceed the interest-blind baselines'.
    assert ours_root <= broadcast_reliability(SCENARIO.c)
    assert ours_root <= multicast_reliability(3, SCENARIO.c)
