"""Transport batching — events/sec of the legacy send loop vs multicast.

Not a paper figure: this bench guards the PR that made fan-out the
transport's first-class primitive. Both paths still exist on
:class:`~repro.net.network.Network` (``send`` drives singles, ``multicast``
drives fan-outs), so old-vs-new is measured inside one process:

* **net layer** — one sender fanning out to ``log10(S)+5`` targets per
  step over a lossy zero-latency channel at S ∈ {100, 1000, 5000}, as a
  ``send`` loop vs one ``multicast`` call per step;
* **system layer** — a full §VII-style publication in a single static
  group of S processes (the batched protocol path end to end), reported
  as transport events/sec.

The batched path must stay comfortably ahead of the loop (the PR measured
≈3–4.5× end to end); the assertion uses a conservative 1.4× floor so CI
noise cannot flake it.
"""

import math
import random
import time

from repro.core.system import DaMulticastSystem
from repro.metrics.report import Table
from repro.net import Network
from repro.net.message import Ping
from repro.sim import Engine

SIZES = (100, 1000, 5000)
STEPS = 2_000  # fan-out steps per net-layer measurement


class Sink:
    __slots__ = ("pid", "received")

    def __init__(self, pid):
        self.pid = pid
        self.received = 0

    def handle_message(self, message):
        self.received += 1


def _net_layer_rate(size: int, batched: bool) -> tuple[float, int]:
    """Events/sec of STEPS fan-outs over a lossy channel, and the count."""
    engine = Engine()
    network = Network(engine, random.Random(0), p_success=0.85)
    for pid in range(size):
        network.register(Sink(pid))
    fanout = math.ceil(math.log10(size) + 5)
    picker = random.Random(1)
    fanouts = [
        picker.sample(range(1, size), fanout) for _ in range(STEPS)
    ]
    ping = Ping(sender=0, nonce=1)
    start = time.perf_counter()
    if batched:
        for targets in fanouts:
            network.multicast(0, targets, ping)
    else:
        for targets in fanouts:
            for target in targets:
                network.send(0, target, ping)
    engine.run()
    elapsed = time.perf_counter() - start
    sent = network.stats.total_sent
    return sent / elapsed, sent


def _system_layer_rate(size: int) -> tuple[float, int]:
    """Events/sec of one full publication in a static group of ``size``."""
    system = DaMulticastSystem(seed=3, p_success=0.85, mode="static")
    system.add_group(".big", size)
    system.finalize_static_membership()
    start = time.perf_counter()
    system.publish(".big")
    system.run_until_idle()
    elapsed = time.perf_counter() - start
    sent = system.stats.total_sent
    return sent / elapsed, sent


def test_transport_batching(benchmark, emit):
    def run():
        table = Table(
            "transport batching: events/sec, send loop vs multicast",
            [
                "S",
                "fanout_evps_loop",
                "fanout_evps_multicast",
                "speedup",
                "publication_evps",
                "publication_events",
            ],
            precision=1,
        )
        for size in SIZES:
            loop_rate, loop_sent = _net_layer_rate(size, batched=False)
            batch_rate, batch_sent = _net_layer_rate(size, batched=True)
            assert loop_sent == batch_sent  # identical trajectories
            publication_rate, publication_sent = _system_layer_rate(size)
            table.add_row(
                size,
                loop_rate,
                batch_rate,
                batch_rate / loop_rate,
                publication_rate,
                publication_sent,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table, "transport_batching")

    for row in table.as_dicts():
        # The batched path must beat the per-target loop decisively at
        # every scale (measured ≈2–3× at the net layer; floor guards CI).
        assert row["speedup"] >= 1.4, (
            f"S={row['S']}: multicast only {row['speedup']:.2f}x over loop"
        )
        # Sanity: the publication actually exercised a real fan-out volume.
        assert row["publication_events"] >= row["S"] * 5
