"""Dynamic-scenario throughput: full-protocol engine events per second.

The static-mode benches time the §VII publish path; this one times the
*dynamic* path the PR-5 scenario specs opened — staggered bootstrap over
the overlay (FIND_SUPER_CONTACT floods), KEEP_TABLE_UPDATED maintenance,
a failure campaign and non-constant latency, horizon-bound. The
``events`` extra_info is the engine's processed-callback count, so
``make_bench_report.py`` derives an events/sec row for the dynamic
scenario in every ``BENCH_PR<k>.json`` — the bench trajectory covers the
dynamic path from this PR on.
"""

from repro.workloads.presets import load_preset
from repro.workloads.spec import compile_spec


def test_dynamic_scenario_event_throughput(benchmark):
    spec = load_preset("churn-recover")
    compiled = compile_spec(spec)

    def one_dynamic_run():
        built = compiled.build(seed=7)
        metrics = built.execute()
        assert metrics["events"] == 3.0
        assert metrics["mean_delivery"] > 0.0
        return built.system.engine.processed

    processed = benchmark(one_dynamic_run)
    benchmark.extra_info["events"] = processed
    benchmark.extra_info["scenario"] = "churn-recover (mode=dynamic)"
    # A real full-protocol run: joins, floods, pings, campaign, events.
    assert processed > 2_000


def test_dynamic_super_link_attack_throughput(benchmark):
    spec = load_preset("super-link-attack")
    compiled = compile_spec(spec)

    def one_attack_run():
        built = compiled.build(seed=3)
        built.execute()
        assert [kind for _, kind, _ in built.campaign.log.actions] == [
            "crash_super_links",
            "recover",
        ]
        return built.system.engine.processed

    processed = benchmark(one_attack_run)
    benchmark.extra_info["events"] = processed
    benchmark.extra_info["scenario"] = "super-link-attack (mode=dynamic)"
    assert processed > 2_000
