"""§IV-A — publisher load: the naive pattern (2) vs daMulticast.

Paper: "The second solution has the disadvantage to overload the
publishers (they must publish in several groups)" and makes them single
points of failure; "In our algorithm, we consider an optimized variant of
the second pattern to achieve a better load distribution."

The measurement: per-event messages transmitted *by the publisher* and by
the busiest process, under the same scenario. In the naive pattern the
publisher pays ``Σ_i fanout(S_i)`` per event; in daMulticast it pays one
group's fan-out plus at most ``z`` hand-offs, and the remaining upward
work is spread over self-elected links.
"""

from repro.baselines.naive_publisher import NaivePublisherSystem
from repro.metrics.report import Table
from repro.sim.rng import derive_seed
from repro.workloads import PaperScenario

SCENARIO = PaperScenario(p_succ=1.0)
RUNS = 3


def measure_damulticast(seed: int) -> dict:
    built = SCENARIO.build(seed=seed, alive_fraction=1.0)
    built.publish_and_run()
    stats = built.system.stats
    publisher = built.publisher_pid
    return {
        "publisher_load": stats.sender_load(publisher),
        "max_load": stats.max_sender_load(),
        "publisher_tables": 2,
        "delivered_root": built.delivered_fractions()[built.topics[0]],
    }


def measure_naive(seed: int) -> dict:
    system = NaivePublisherSystem(
        seed=seed,
        p_success=SCENARIO.p_succ,
        b=SCENARIO.b,
        c=SCENARIO.c,
        log_base=SCENARIO.fanout_log_base,
    )
    topics = SCENARIO.topics()
    for topic, size in zip(topics, SCENARIO.sizes):
        system.add_group(topic, size)
    system.finalize_membership()
    publisher = system.subscribers_of(topics[-1])[0]
    system.publish(topics[-1], publisher=publisher)
    system.run_until_idle()
    root_subscribers = [p.pid for p in system.subscribers_of(topics[0])]
    receivers = system.tracker.receivers(
        system.tracker.events[0].event_id
    )
    delivered_root = sum(
        1 for pid in root_subscribers if pid in receivers
    ) / len(root_subscribers)
    return {
        "publisher_load": system.stats.sender_load(publisher.pid),
        "max_load": system.stats.max_sender_load(),
        "publisher_tables": publisher.table_count,
        "delivered_root": delivered_root,
    }


def build_table() -> Table:
    table = Table(
        "§IV-A publisher load — naive pattern (2) vs daMulticast "
        f"(means over {RUNS} runs, publication on T2)",
        [
            "algorithm",
            "publisher_load",
            "max_load",
            "publisher_tables",
            "delivered_root",
        ],
        precision=2,
    )
    for name, measure in (
        ("daMulticast", measure_damulticast),
        ("naive pattern (2)", measure_naive),
    ):
        samples = [
            measure(derive_seed(0, f"load/{name}/{j}")) for j in range(RUNS)
        ]
        table.add_row(
            name,
            sum(s["publisher_load"] for s in samples) / RUNS,
            sum(s["max_load"] for s in samples) / RUNS,
            sum(s["publisher_tables"] for s in samples) / RUNS,
            sum(s["delivered_root"] for s in samples) / RUNS,
        )
    return table


def test_load_distribution(benchmark, emit):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit(table, "sec4_load_distribution")

    rows = {row["algorithm"]: row for row in table.as_dicts()}
    ours = rows["daMulticast"]
    naive = rows["naive pattern (2)"]

    # Both deliver to the root...
    assert ours["delivered_root"] >= 0.9
    assert naive["delivered_root"] >= 0.9
    # ...but the naive publisher carries the whole hierarchy's injection:
    # fanout(1000)+fanout(100)+fanout(10) = 8+7+6 = 21 transmissions vs
    # daMulticast's 8 + (at most z=3).
    assert naive["publisher_load"] >= ours["publisher_load"] + 5
    # And it needs one membership table per level instead of two.
    assert naive["publisher_tables"] == 3
    assert ours["publisher_tables"] == 2