"""Fault-layer overhead bench: the per-message cost of the fault hook.

The link-fault layer (:mod:`repro.net.faults`) sits on the hottest path
in the simulator — every ``send``/``multicast`` target consults it when a
model is installed. This bench measures both sides of that bargain at the
large-S columnar scale (``REPRO_COLUMNAR_S``, default 2·10⁴ here — the
CI smoke population, cheap enough for the per-PR trajectory):

* **no_faults** — the uninstalled hook: one publication flood with no
  fault model, the pre-existing fast path. Its events/sec is the
  baseline every earlier BENCH_PR<k>.json recorded;
* **bernoulli_1pct** — the same flood through ``BernoulliLoss(0.01)``,
  the cheapest active model (one coin per target). The events/sec gap
  between the two IS the fault-layer tax; extra_info records both the
  loss count and the delivered fraction, tying the perf number to the
  graceful-degradation story it pays for.

Both land in BENCH_PR<k>.json via make_bench_report.py.
"""

import os
import random

from repro.core.columnar import ColumnarStaticSystem
from repro.net.faults import BernoulliLoss
from repro.net.stats import FAULT_LOSS

S = int(os.environ.get("REPRO_COLUMNAR_S", "20000"))
SUPER_S = max(10, S // 100)


def build_system(seed: int = 9) -> ColumnarStaticSystem:
    system = ColumnarStaticSystem(seed=seed, p_success=1.0)
    system.add_group(".t1", SUPER_S)
    system.add_group(".t1.t2", S)
    system.finalize_static_membership()
    return system


def flood_once(system) -> int:
    before = system.engine.processed
    event = system.publish(".t1.t2")
    system.run_until_idle()
    for topic in (".t1", ".t1.t2"):
        system.group_actor(topic).release_event_state(event.event_id)
    return system.engine.processed - before


def test_fault_hook_uninstalled(benchmark):
    """Baseline flood: no fault model, the zero-draw fast path."""
    system = build_system()
    processed = benchmark.pedantic(
        lambda: flood_once(system), rounds=2, iterations=1
    )
    benchmark.extra_info["events"] = processed
    benchmark.extra_info["population"] = S + SUPER_S
    benchmark.extra_info["fault_losses"] = 0
    assert system.network.faults is None
    assert processed > S


def test_fault_hook_bernoulli_1pct(benchmark):
    """The same flood through a 1% Bernoulli loss coin per link."""
    system = build_system()
    system.network.install_faults(BernoulliLoss(0.01), random.Random(17))
    processed = benchmark.pedantic(
        lambda: flood_once(system), rounds=2, iterations=1
    )
    losses = system.stats.faults_by_reason[FAULT_LOSS]
    delivered = system.tracker.deliveries
    benchmark.extra_info["events"] = processed
    benchmark.extra_info["population"] = S + SUPER_S
    benchmark.extra_info["fault_losses"] = losses
    benchmark.extra_info["delivered_fraction_vs_population"] = round(
        delivered / (2 * (S + SUPER_S)), 4
    )
    # the coin really fired (~1% of sends), and gossip redundancy kept
    # the flood near-complete anyway — graceful degradation at scale
    assert losses > 0
    assert delivered > 2 * 0.9 * (S + SUPER_S)
