"""Live-mode throughput bench: publishes/sec over the asyncio runtime.

Service mode (PR10) runs the protocol core on the wall-clock side of the
clock/transport seam — an asyncio pump task draining the in-process
:class:`~repro.net.transport.QueueTransport` instead of the engine heap.
This bench measures what that live path sustains:

* **live_publish_throughput** — N publishes through a started
  :class:`~repro.service.runtime.LiveRuntime` (publish → full cascade
  drain, the replay-safe discipline), reported as publishes/sec via
  ``extra_info["events"]``, plus the per-destination delivery count the
  cascades produced;
* **queue_transport_pump** — the same workload with the asyncio layer
  peeled off: the queue transport pumped synchronously on a virtual
  clock. The gap between the two rows is the event-loop tax
  (task switches, timer wheel, drain round-trips), isolating protocol
  cost from asyncio cost.

Both land in BENCH_PR<k>.json via make_bench_report.py.
"""

import asyncio
import os

from repro.net.transport import QueueTransport
from repro.service.runtime import LiveRuntime

GROUP_S = int(os.environ.get("REPRO_LIVE_S", "60"))
SUPER_S = max(5, GROUP_S // 10)
PUBLISHES = int(os.environ.get("REPRO_LIVE_PUBLISHES", "50"))


def build_runtime(seed: int = 9) -> LiveRuntime:
    runtime = LiveRuntime(seed=seed)
    runtime.add_group(".t1", SUPER_S)
    runtime.add_group(".t1.t2", GROUP_S)
    return runtime


def test_live_publish_throughput(benchmark):
    """Publishes/sec through the full asyncio pump path."""

    def run_service() -> dict:
        async def scenario():
            runtime = build_runtime()
            async with runtime:
                for n in range(PUBLISHES):
                    await runtime.publish(".t1.t2", n)
                return runtime.status()

        return asyncio.run(scenario())

    status = benchmark.pedantic(run_service, rounds=2, iterations=1)
    benchmark.extra_info["events"] = PUBLISHES
    benchmark.extra_info["population"] = GROUP_S + SUPER_S
    benchmark.extra_info["deliveries"] = status["queue"]["executed"]
    benchmark.extra_info["scheduler_lag_max_ms"] = round(
        status["scheduler_lag"]["max"] * 1e3, 3
    )
    assert status["published"] == PUBLISHES
    assert status["queue"]["pending"] == 0


def test_queue_transport_pump(benchmark):
    """The same cascades with no event loop: synchronous pump baseline."""

    def run_sync() -> int:
        from repro.core.system import DaMulticastSystem
        from repro.runtime import SimulationHarness
        from repro.sim.engine import Engine

        engine = Engine()
        transport = QueueTransport(engine)
        harness = SimulationHarness(
            seed=9, clock=engine, transport=transport
        )
        system = DaMulticastSystem(mode="static", harness=harness)
        system.add_group(".t1", SUPER_S)
        system.add_group(".t1.t2", GROUP_S)
        system.finalize_static_membership()
        publish_rng = harness.rngs.stream("live/publish")
        for n in range(PUBLISHES):
            members = system.group(".t1.t2")
            system.publish(".t1.t2", n, publisher=publish_rng.choice(members))
            while transport.next_due() is not None:
                transport.pump(transport.next_due())
        return transport.executed

    executed = benchmark.pedantic(run_sync, rounds=2, iterations=1)
    benchmark.extra_info["events"] = PUBLISHES
    benchmark.extra_info["population"] = GROUP_S + SUPER_S
    benchmark.extra_info["deliveries"] = executed
    assert executed > PUBLISHES * GROUP_S  # cascades really fanned out
