"""Standardized per-PR bench record: raw pytest-benchmark JSON → BENCH_PR<k>.json.

CI runs the smoke benches with ``--benchmark-json=benchmarks/out/bench_raw.json``
and then converts that dump into a small, stable, diff-friendly record::

    benchmarks/out/BENCH_PR<k>.json

where ``<k>`` comes from ``REPRO_PR_NUMBER`` (CI sets it to the pull-request
number, falling back to the workflow run number) or ``"local"``. One such
file per PR, uploaded with the bench-tables artifact, is the bench
trajectory: events/sec for the throughput benches, build seconds for the
membership bench, sweep wall-clock for the parallel-sweep bench.

Schema (``repro-bench-v1``)::

    {
      "schema": "repro-bench-v1",
      "pr": "<k>",
      "python": "3.12.1",
      "commit": "<sha or null>",
      "benches": [
        {
          "name": "test_engine_event_throughput",
          "group": null,
          "mean_s": 0.0123,
          "min_s": 0.0119,
          "rounds": 5,
          "ops_per_sec": 81.3,
          "events_per_sec": 813000.0,   # when extra_info reports "events"
          "extra_info": {"events": 10000}
        },
        ...
      ]
    }

Usage: ``python benchmarks/make_bench_report.py RAW.json [OUT_DIR]``.
Exits non-zero when the raw dump contains no benchmarks, so CI never
uploads an empty trajectory record by mistake.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys


def build_report(raw: dict, pr: str) -> dict:
    """The standardized record for one raw pytest-benchmark dump."""
    benches = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = stats.get("mean")
        extra_info = bench.get("extra_info", {}) or {}
        entry = {
            "name": bench.get("name"),
            "group": bench.get("group"),
            "mean_s": mean,
            "min_s": stats.get("min"),
            "rounds": stats.get("rounds"),
            "ops_per_sec": (1.0 / mean) if mean else None,
            "extra_info": extra_info,
        }
        events = extra_info.get("events")
        if isinstance(events, (int, float)) and mean:
            entry["events_per_sec"] = events / mean
        bytes_per_process = extra_info.get("bytes_per_process")
        if isinstance(bytes_per_process, (int, float)):
            entry["bytes_per_process"] = bytes_per_process
        benches.append(entry)
    return {
        "schema": "repro-bench-v1",
        "pr": pr,
        "python": raw.get("machine_info", {}).get("python_version"),
        "commit": (raw.get("commit_info") or {}).get("id"),
        "benches": benches,
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not 1 <= len(argv) <= 2:
        print(
            "usage: make_bench_report.py RAW_BENCHMARK_JSON [OUT_DIR]",
            file=sys.stderr,
        )
        return 2
    raw_path = pathlib.Path(argv[0])
    out_dir = pathlib.Path(argv[1]) if len(argv) == 2 else raw_path.parent
    pr = (
        os.environ.get("REPRO_PR_NUMBER")
        or os.environ.get("GITHUB_RUN_NUMBER")
        or "local"
    )
    raw = json.loads(raw_path.read_text())
    report = build_report(raw, pr)
    if not report["benches"]:
        print(f"no benchmarks found in {raw_path}", file=sys.stderr)
        return 1
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_PR{pr}.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path} ({len(report['benches'])} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
